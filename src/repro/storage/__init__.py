"""Object-storage substrate used by Airphant and all baselines.

The paper persists everything (documents, superposts, index metadata) on cloud
object storage (GCS / S3).  This package provides:

* :class:`~repro.storage.base.ObjectStore` — the abstract blob interface with
  random-range reads, mirroring the byte-range GET supported by all major
  cloud vendors.
* :class:`~repro.storage.memory.InMemoryObjectStore` and
  :class:`~repro.storage.local.LocalObjectStore` — concrete backends.
* :class:`~repro.storage.simulated.SimulatedCloudStore` — wraps any backend
  with the affine latency model of the paper's Figure 2 (first-byte latency +
  transfer time), optional long-tail stragglers, and per-region round-trip
  times.  It also records per-request metrics (round-trips, bytes, wait time,
  download time) used by the latency-breakdown experiments.
* :class:`~repro.storage.parallel.ParallelFetcher` — issues a *batch* of range
  reads concurrently, the primitive that IoU Sketch relies on.
* :class:`~repro.storage.pipeline.ReadPipeline` — sits between callers and the
  fetcher, deduplicating identical ranges, coalescing adjacent/overlapping
  ones into fewer larger requests, and serving repeats from a bounded LRU
  block cache.
"""

from repro.storage.base import BlobNotFoundError, ObjectStore, RangeRead
from repro.storage.latency import AffineLatencyModel, RegionProfile, REGION_PROFILES
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.metrics import RequestRecord, StorageMetrics
from repro.storage.parallel import ParallelFetcher
from repro.storage.pipeline import PipelineStats, ReadPipeline
from repro.storage.simulated import SimulatedCloudStore

__all__ = [
    "AffineLatencyModel",
    "BlobNotFoundError",
    "InMemoryObjectStore",
    "LocalObjectStore",
    "ObjectStore",
    "ParallelFetcher",
    "PipelineStats",
    "RangeRead",
    "ReadPipeline",
    "REGION_PROFILES",
    "RegionProfile",
    "RequestRecord",
    "SimulatedCloudStore",
    "StorageMetrics",
]
