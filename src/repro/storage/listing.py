"""Optional listing manifest for backends with no native listing operation.

Plain ``http(s)://`` stores can open and search any index *by name* but
cannot discover what a bucket contains — HTTP has no portable LIST.  The
standard workaround (used by static site generators and OCI registries
alike) is an index document: a single well-known blob enumerating every blob
(and its size) in the export.  :func:`write_listing` produces that blob at
build time from any listable store; :class:`~repro.storage.httpstore.HTTPRangeStore`
reads it back to implement ``list_blobs`` / ``total_bytes``, which makes
``IndexCatalog`` discovery (``GET /indexes``, ``airphant serve``) work
against ``python -m http.server``, nginx, or a CDN bucket website.

The manifest is a snapshot: re-run :func:`write_listing` (or build with
``airphant build --listing``) after changing the bucket.
"""

from __future__ import annotations

import json

from repro.storage.base import ObjectStore

#: Well-known blob name of the listing manifest, at the bucket root.
LISTING_BLOB = "manifest.json"

#: Format marker inside the manifest (rejects unrelated manifest.json files).
_LISTING_FORMAT = "airphant-listing"


def encode_listing(blobs: dict[str, int]) -> bytes:
    """Serialize a ``{blob name: size}`` listing as the manifest payload."""
    payload = {
        "format": _LISTING_FORMAT,
        "version": 1,
        "blobs": {name: int(size) for name, size in sorted(blobs.items())},
    }
    return json.dumps(payload, indent=2).encode("utf-8")


def decode_listing(data: bytes) -> dict[str, int]:
    """Parse a listing manifest back into ``{blob name: size}``.

    Raises ``ValueError`` when the payload is not a listing manifest (for
    example an index's *append-only* ``manifest.json``, which lives under
    the index prefix, not at the root — but a misconfigured base URL could
    point at one).
    """
    payload = json.loads(data.decode("utf-8"))
    if not isinstance(payload, dict) or payload.get("format") != _LISTING_FORMAT:
        raise ValueError(
            f"not a listing manifest (missing format={_LISTING_FORMAT!r} marker)"
        )
    blobs = payload.get("blobs")
    if not isinstance(blobs, dict):
        raise ValueError("listing manifest has no 'blobs' object")
    return {str(name): int(size) for name, size in blobs.items()}


def write_listing(store: ObjectStore) -> dict[str, int]:
    """Write/refresh the listing manifest of ``store``; returns the listing.

    The store must support native listing (local, memory, s3, …): this runs
    at *build* time, against the bucket the index was just written to.  The
    manifest never lists itself, so repeated refreshes are stable.
    """
    blobs = {
        name: store.size(name)
        for name in store.list_blobs()
        if name != LISTING_BLOB
    }
    store.put(LISTING_BLOB, encode_listing(blobs))
    return blobs
