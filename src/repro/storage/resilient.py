"""Resilience wrapper: retries, per-request timeouts, and hedged reads.

Serving index lookups straight from cloud object storage exposes every query
to the network's failure modes: transient errors, stalled connections, and
long-tail stragglers (the paper's Section IV-G motivation; cf. Leidner 2018
on distributed retrieval over cloud storage).  :class:`ResilientStore` wraps
any :class:`~repro.storage.base.ObjectStore` and tames all three *without*
the inner backend having to know:

* **Retries** — transient failures (:class:`TransientStoreError`,
  ``OSError``) are retried up to ``retries`` times with exponential backoff
  and multiplicative jitter; :class:`BlobNotFoundError` and
  :class:`ReadOnlyStoreError` are definitive answers and never retried.
  Exhaustion raises :class:`RetriesExhaustedError` (itself transient, so
  stacked wrappers compose).
* **Timeouts** — with ``timeout_s`` set, each attempt is bounded; an attempt
  that exceeds it counts as a transient failure (and therefore retries).
* **Hedged reads** — with ``hedge_ms > 0``, a ``get``/``get_range`` that has
  not answered after the hedge delay gets a *duplicate* request; whichever
  finishes first wins.  The delay adapts to the workload: it is the
  ``hedge_percentile``-th percentile of recently observed read latencies,
  floored at ``hedge_ms``, so only genuinely slow outliers are hedged.
  Range reads are idempotent, which is what makes duplication safe.

Everything is accounted in :class:`ResilienceStats` (attempts, retries,
hedges, hedge wins, timeouts), which the fault-injection ablation
(``benchmarks/test_ablation_backends.py``) records to
``results/BENCH_backends.json``.

Wall-clock vs. virtual clock: retries, timeouts, and hedging act in *real
time* — they are meaningful over real backends (HTTP, S3) and over
fault-injecting wrappers that really sleep
(:class:`~repro.storage.faults.FlakyStore`).  A
:class:`~repro.storage.simulated.SimulatedCloudStore` returns instantly on
its virtual clock, so hedges never fire against it (reads still pass through
byte-for-byte unchanged).
"""

from __future__ import annotations

import os
import random
import threading
import time
import weakref
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

from repro.observability import MetricsRegistry, MirroredStats, get_registry
from repro.observability.tracing import current_span, span
from repro.storage.base import (
    BlobNotFoundError,
    ObjectStore,
    ReadOnlyStoreError,
    TransientStoreError,
)

# The pid-guarded pool finalizer is shared with the parallel fetcher: the
# fork-safety semantics must stay identical for both pools.
from repro.storage.parallel import _shutdown_pool

T = TypeVar("T")


class StoreTimeoutError(TransientStoreError):
    """An attempt exceeded the configured per-request timeout.

    Subclasses :class:`TransientStoreError`, so a timed-out attempt is
    retried like any other transient failure.
    """


class RetriesExhaustedError(TransientStoreError):
    """Every allowed attempt of one operation failed.

    Parameters
    ----------
    operation:
        Human-readable description of what was being attempted.
    attempts:
        Total attempts made (1 + retries).
    last_error:
        The error of the final attempt, also set as ``__cause__``.
    """

    def __init__(self, operation: str, attempts: int, last_error: BaseException) -> None:
        super().__init__(
            f"{operation} failed after {attempts} attempt(s): {last_error}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error
        self.__cause__ = last_error


#: ResilienceStats field -> (registry counter name, help) mirrored on update.
_RESILIENCE_COUNTERS: dict[str, tuple[str, str]] = {
    "operations": (
        "airphant_resilience_operations_total",
        "Store operations entering the retry/hedge machinery",
    ),
    "attempts": (
        "airphant_resilience_attempts_total",
        "Individual store attempts (each retry adds one)",
    ),
    "retries": (
        "airphant_resilience_retries_total",
        "Attempts beyond the first of their operation",
    ),
    "recoveries": (
        "airphant_resilience_recoveries_total",
        "Operations rescued by a later attempt after failing at least once",
    ),
    "failures": (
        "airphant_resilience_failures_total",
        "Operations that failed even after every allowed retry",
    ),
    "timeouts": (
        "airphant_resilience_timeouts_total",
        "Attempts abandoned for exceeding the per-request timeout",
    ),
    "hedges": (
        "airphant_resilience_hedges_total",
        "Duplicate (hedge) requests launched",
    ),
    "hedge_wins": (
        "airphant_resilience_hedge_wins_total",
        "Hedge requests that finished before their primary",
    ),
}


@dataclass
class ResilienceStats(MirroredStats):
    """What one :class:`ResilientStore` attempted, retried, and hedged.

    Updates go through :meth:`~repro.observability.MirroredStats.add`,
    which is atomic (its own lock — the retry loop, the timeout guard, and
    the hedge pool all report from different threads) and mirrors every
    increment into the bound
    :class:`~repro.observability.MetricsRegistry`.
    """

    _COUNTER_TABLE = _RESILIENCE_COUNTERS

    #: Top-level store operations entering the retry/hedge machinery.
    operations: int = 0
    #: Individual attempts (>= operations; each retry adds one).
    attempts: int = 0
    #: Attempts beyond the first of their operation.
    retries: int = 0
    #: Operations that failed at least once but succeeded on a later attempt.
    recoveries: int = 0
    #: Operations that failed even after every allowed retry.
    failures: int = 0
    #: Attempts abandoned for exceeding the per-request timeout.
    timeouts: int = 0
    #: Duplicate (hedge) requests launched.
    hedges: int = 0
    #: Hedge requests that finished before their primary.
    hedge_wins: int = 0

    @property
    def hedge_win_rate(self) -> float:
        """Fraction of launched hedges that beat their primary (0 when none)."""
        return self.hedge_wins / self.hedges if self.hedges else 0.0

    @property
    def retry_win_rate(self) -> float:
        """Fraction of retried operations that retrying ultimately rescued.

        ``recoveries / (recoveries + failures)``: of the operations whose
        first attempt failed, how many a later attempt saved (0 when no
        operation ever failed).
        """
        troubled = self.recoveries + self.failures
        return self.recoveries / troubled if troubled else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (used by benchmarks and tests)."""
        return {
            "operations": self.operations,
            "attempts": self.attempts,
            "retries": self.retries,
            "recoveries": self.recoveries,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_win_rate": self.hedge_win_rate,
            "retry_win_rate": self.retry_win_rate,
        }


class ResilientStore(ObjectStore):
    """Retrying / timing-out / hedging wrapper around any object store.

    Parameters
    ----------
    backend:
        The store every operation is delegated to.
    retries:
        Transient failures retried per operation (0 disables retrying; the
        operation still gets its one attempt).
    backoff_ms:
        Sleep before the first retry, in milliseconds; each further retry
        multiplies it by ``backoff_multiplier`` up to ``max_backoff_ms``.
    backoff_multiplier / max_backoff_ms:
        Exponential-backoff schedule bounds.
    backoff_jitter:
        Multiplicative jitter: each sleep is scaled by a uniform factor in
        ``[1, 1 + backoff_jitter]`` so synchronized retries de-correlate.
    timeout_s:
        Per-attempt wall-clock bound; ``None`` disables timeouts.  A timed
        out attempt's thread is abandoned (its result discarded), which is
        safe because reads are idempotent.
    hedge_ms:
        Floor of the hedge delay in milliseconds; 0 disables hedging.
    hedge_percentile:
        Percentile of recently observed read latencies used as the adaptive
        hedge delay (floored at ``hedge_ms``).
    hedge_concurrency:
        Worker threads of the shared hedge pool.  Size it *above* the
        largest concurrent read batch the caller issues (e.g. twice the
        fetcher's ``max_concurrency``), or a fully-slow wave parks a primary
        on every worker and the hedges queue behind the stragglers they are
        meant to race.
    seed:
        Seed of the private jitter RNG, for reproducible backoff schedules.
    sleep / clock:
        Injection points for tests (defaults: ``time.sleep`` /
        ``time.perf_counter``).
    metrics:
        Registry the :class:`ResilienceStats` mirror into; defaults to the
        process-wide registry (:func:`repro.observability.get_registry`).
    """

    #: Observed-latency samples kept for the adaptive hedge delay.
    _LATENCY_WINDOW = 256
    #: Samples required before the percentile overrides the ``hedge_ms`` floor.
    _MIN_LATENCY_SAMPLES = 16

    def __init__(
        self,
        backend: ObjectStore,
        retries: int = 2,
        backoff_ms: float = 20.0,
        backoff_multiplier: float = 2.0,
        max_backoff_ms: float = 2_000.0,
        backoff_jitter: float = 0.25,
        timeout_s: float | None = None,
        hedge_ms: float = 0.0,
        hedge_percentile: float = 95.0,
        hedge_concurrency: int = 64,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.perf_counter,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff_ms < 0 or max_backoff_ms < 0:
            raise ValueError("backoff values must be non-negative")
        if backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive when set")
        if hedge_ms < 0:
            raise ValueError("hedge_ms must be non-negative")
        if not 0.0 < hedge_percentile <= 100.0:
            raise ValueError("hedge_percentile must be in (0, 100]")
        if hedge_concurrency <= 0:
            raise ValueError("hedge_concurrency must be positive")
        self._backend = backend
        self._retries = retries
        self._backoff_ms = backoff_ms
        self._backoff_multiplier = backoff_multiplier
        self._max_backoff_ms = max_backoff_ms
        self._backoff_jitter = backoff_jitter
        self._timeout_s = timeout_s
        self._hedge_ms = hedge_ms
        self._hedge_percentile = hedge_percentile
        self._hedge_concurrency = hedge_concurrency
        self._sleep = sleep
        self._clock = clock
        self._rng = random.Random(seed)
        self._latencies: deque[float] = deque(maxlen=self._LATENCY_WINDOW)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.stats = ResilienceStats().bind(
            metrics if metrics is not None else get_registry()
        )

    # -- plumbing ----------------------------------------------------------------

    @property
    def backend(self) -> ObjectStore:
        """The wrapped store operations are delegated to."""
        return self._backend

    @property
    def hedging_enabled(self) -> bool:
        """Whether ``get``/``get_range`` may launch duplicate requests."""
        return self._hedge_ms > 0

    def hedge_delay_s(self) -> float:
        """Current hedge delay in seconds.

        Returns
        -------
        The ``hedge_percentile``-th percentile of recently observed read
        latencies once enough samples exist, floored at ``hedge_ms``;
        before that, just the ``hedge_ms`` floor.
        """
        floor = self._hedge_ms / 1000.0
        with self._lock:
            if len(self._latencies) < self._MIN_LATENCY_SAMPLES:
                return floor
            ordered = sorted(self._latencies)
        index = min(len(ordered) - 1, int(len(ordered) * self._hedge_percentile / 100.0))
        return max(floor, ordered[index])

    def close(self) -> None:
        """Shut down the hedge/timeout pool and close the wrapped store.

        Idempotent and non-poisoning: the pool is rebuilt lazily if the
        store is used again.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)
        super().close()
        self._backend.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._hedge_concurrency,
                    thread_name_prefix="airphant-hedge",
                )
                # Owners that never call close() (the one-shot CLI among
                # them) must not strand idle hedge workers until interpreter
                # exit — same pid-guarded finalizer backstop the parallel
                # fetcher uses; it references only the pool, never self.
                weakref.finalize(self, _shutdown_pool, self._pool, os.getpid())
            return self._pool

    # -- retry / timeout / hedge machinery ----------------------------------------

    def _observe(self, latency_s: float) -> None:
        with self._lock:
            self._latencies.append(latency_s)

    def _with_retries(self, operation: str, fn: Callable[[], T], hedge: bool = False) -> T:
        """Run ``fn`` under the retry policy (and hedging, when asked).

        Returns ``fn``'s result; raises :class:`RetriesExhaustedError` once
        every allowed attempt has failed transiently.  Non-transient errors
        (not-found, read-only, programming errors) propagate immediately.
        """
        backoff_s = self._backoff_ms / 1000.0
        attempts = self._retries + 1
        last_error: BaseException | None = None
        self.stats.add(operations=1)
        for attempt in range(attempts):
            self.stats.add(attempts=1, retries=1 if attempt else 0)
            with span(
                "store.attempt", operation=operation, retry=bool(attempt)
            ) as attempt_span:
                try:
                    if hedge and self.hedging_enabled:
                        result = self._hedged_call(fn)
                    else:
                        result = self._guarded_call(fn)
                    if attempt:
                        self.stats.add(recoveries=1)
                        attempt_span.set(recovered=True)
                    return result
                except (BlobNotFoundError, ReadOnlyStoreError):
                    raise
                except (TransientStoreError, OSError) as error:
                    last_error = error
                    attempt_span.set(error=type(error).__name__)
                    if isinstance(error, StoreTimeoutError):
                        attempt_span.set(timeout=True)
            if attempt + 1 >= attempts:
                break
            with self._lock:
                jitter = 1.0 + self._backoff_jitter * self._rng.random()
            self._sleep(min(backoff_s, self._max_backoff_ms / 1000.0) * jitter)
            backoff_s *= self._backoff_multiplier
        self.stats.add(failures=1)
        assert last_error is not None
        raise RetriesExhaustedError(operation, attempts, last_error)

    def _guarded_call(self, fn: Callable[[], T]) -> T:
        """One attempt, bounded by ``timeout_s`` when configured.

        Runs ``fn`` on a dedicated (ephemeral, daemon) thread rather than
        the shared hedge pool: a timed-out attempt's thread keeps running
        until the backend's own socket timeout releases it, and parking
        those zombies in a bounded pool would let a burst of timeouts starve
        every later retry on queue wait — cascading spurious timeouts even
        after the backend recovers.  The per-read thread-creation cost only
        applies when ``timeout_s`` is set without hedging.
        """
        if self._timeout_s is None:
            return fn()
        outcome: list[object] = []
        failure: list[BaseException] = []
        done = threading.Event()

        def _runner() -> None:
            try:
                outcome.append(fn())
            except BaseException as error:  # noqa: BLE001 - relayed below
                failure.append(error)
            finally:
                done.set()

        thread = threading.Thread(
            target=_runner, daemon=True, name="airphant-timeout-guard"
        )
        thread.start()
        if not done.wait(self._timeout_s):
            self.stats.add(timeouts=1)
            raise StoreTimeoutError(
                f"attempt exceeded the {self._timeout_s:.3f}s timeout"
            ) from None
        if failure:
            raise failure[0]
        return outcome[0]  # type: ignore[return-value]

    def _hedged_call(self, fn: Callable[[], T]) -> T:
        """One attempt that may launch a duplicate after the hedge delay.

        Both racers run on the shared hedge pool (racing needs futures); a
        sustained burst of timed-out reads can therefore queue behind
        abandoned workers until the backend's socket timeout frees them —
        size ``hedge_concurrency`` above the fetcher's ``max_concurrency``
        when combining hedging with tight timeouts.
        """
        pool = self._ensure_pool()
        started = self._clock()
        primary: Future[T] = pool.submit(fn)
        delay = self.hedge_delay_s()
        if self._timeout_s is not None:
            delay = min(delay, self._timeout_s)
        try:
            payload = primary.result(timeout=delay)
        except FuturesTimeoutError:
            pass  # still running: hedge below
        else:
            self._observe(self._clock() - started)
            return payload

        if self._timeout_s is not None and self._clock() - started >= self._timeout_s:
            primary.cancel()
            self.stats.add(timeouts=1)
            raise StoreTimeoutError(
                f"attempt exceeded the {self._timeout_s:.3f}s timeout"
            ) from None

        self.stats.add(hedges=1)
        attempt_span = current_span()
        if attempt_span is not None:
            attempt_span.set(hedged=True)
        hedge_started = self._clock()
        secondary: Future[T] = pool.submit(fn)
        pending: set[Future[T]] = {primary, secondary}
        errors: list[BaseException] = []
        while pending:
            remaining = (
                None
                if self._timeout_s is None
                else max(0.0, self._timeout_s - (self._clock() - started))
            )
            done, pending = wait(pending, timeout=remaining, return_when=FIRST_COMPLETED)
            if not done:
                for future in pending:
                    future.cancel()
                self.stats.add(timeouts=1)
                raise StoreTimeoutError(
                    f"hedged attempt exceeded the {self._timeout_s:.3f}s timeout"
                ) from None
            for future in done:
                try:
                    payload = future.result()
                except (TransientStoreError, OSError, BlobNotFoundError) as error:
                    errors.append(error)
                    continue
                if future is secondary:
                    self.stats.add(hedge_wins=1)
                    if attempt_span is not None:
                        attempt_span.set(winner="hedge")
                    # Observe the winner's OWN latency, not delay + latency:
                    # feeding the hedge wait back into the reservoir would
                    # ratchet the adaptive delay upward every win until
                    # hedging disabled itself under sustained stragglers.
                    self._observe(self._clock() - hedge_started)
                else:
                    if attempt_span is not None:
                        attempt_span.set(winner="primary")
                    self._observe(self._clock() - started)
                return payload
        # Both the primary and the hedge failed: a definitive not-found wins
        # (the blob really is not there); otherwise surface the last failure.
        for error in errors:
            if isinstance(error, BlobNotFoundError):
                raise error
        raise errors[-1]

    # -- ObjectStore interface (all delegated through the policy) ------------------

    def put(self, name: str, data: bytes) -> None:
        """Store ``data`` as blob ``name`` (retried; whole-object PUTs are idempotent)."""
        self._with_retries(f"put {name!r}", lambda: self._backend.put(name, data))

    def get(self, name: str) -> bytes:
        """Return the full content of blob ``name`` (retried and hedged)."""
        return self._with_retries(f"get {name!r}", lambda: self._backend.get(name), hedge=True)

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        """Return a byte range of blob ``name`` (retried and hedged)."""
        return self._with_retries(
            f"get_range {name!r}[{offset}:+{length}]",
            lambda: self._backend.get_range(name, offset, length),
            hedge=True,
        )

    def size(self, name: str) -> int:
        """Return the size of blob ``name`` in bytes (retried)."""
        return self._with_retries(f"size {name!r}", lambda: self._backend.size(name))

    def exists(self, name: str) -> bool:
        """Whether blob ``name`` exists (retried)."""
        return self._with_retries(f"exists {name!r}", lambda: self._backend.exists(name))

    def delete(self, name: str) -> None:
        """Delete blob ``name`` if present (retried; deletes are idempotent)."""
        self._with_retries(f"delete {name!r}", lambda: self._backend.delete(name))

    def list_blobs(self, prefix: str = "") -> list[str]:
        """Sorted blob names under ``prefix`` from the wrapped store (retried)."""
        return self._with_retries(
            f"list_blobs {prefix!r}", lambda: self._backend.list_blobs(prefix)
        )
