"""Simulated cloud object store.

Wraps any :class:`~repro.storage.base.ObjectStore` backend with the affine
latency model of :mod:`repro.storage.latency`.  The simulator uses a
*virtual clock*: it never sleeps, it just computes how long each request
would have taken and returns those timings alongside the data.  This keeps
the full benchmark suite runnable in seconds while preserving the relative
behaviour the paper measures (round-trip counts, parallelism, bytes moved,
bandwidth contention, and cross-region RTT inflation).
"""

from __future__ import annotations

from typing import Iterable

from repro.storage.base import ObjectStore, RangeRead
from repro.storage.latency import AffineLatencyModel
from repro.storage.memory import InMemoryObjectStore
from repro.storage.metrics import BatchRecord, RequestRecord, StorageMetrics


class SimulatedCloudStore(ObjectStore):
    """Object store with simulated network timing.

    Parameters
    ----------
    backend:
        Where blob bytes actually live (defaults to an in-memory store).
    latency_model:
        The affine latency model used to cost every request.
    record_metrics:
        When true (default), every timed request is appended to
        :attr:`metrics`.
    """

    def __init__(
        self,
        backend: ObjectStore | None = None,
        latency_model: AffineLatencyModel | None = None,
        record_metrics: bool = True,
    ) -> None:
        self._backend = backend if backend is not None else InMemoryObjectStore()
        self._latency = latency_model if latency_model is not None else AffineLatencyModel()
        self._record_metrics = record_metrics
        self.metrics = StorageMetrics()

    # -- plumbing --------------------------------------------------------------

    @property
    def backend(self) -> ObjectStore:
        """The underlying store holding the actual bytes."""
        return self._backend

    @property
    def latency_model(self) -> AffineLatencyModel:
        """The latency model costing each request."""
        return self._latency

    def with_latency_model(self, latency_model: AffineLatencyModel) -> "SimulatedCloudStore":
        """Return a new simulated view of the *same* backend with a new model.

        Used by the cross-region experiments: the data stays in one place
        while compute "moves" further away.
        """
        return SimulatedCloudStore(
            backend=self._backend,
            latency_model=latency_model,
            record_metrics=self._record_metrics,
        )

    def with_backend(self, backend: ObjectStore) -> "SimulatedCloudStore":
        """Return a simulated view of a *different* backend, same model.

        The complement of :meth:`with_latency_model` — used to slide a
        wrapper (e.g. a :class:`~repro.storage.resilient.ResilientStore`)
        *underneath* the simulation layer, so virtual-clock timing stays on
        top while the wrapper guards the real backend.
        """
        return SimulatedCloudStore(
            backend=backend,
            latency_model=self._latency,
            record_metrics=self._record_metrics,
        )

    # -- ObjectStore interface (pass-through data, metered timing) -------------

    def put(self, name: str, data: bytes) -> None:
        self._backend.put(name, data)

    def get(self, name: str) -> bytes:
        data, _ = self.timed_get(name)
        return data

    def get_range(self, name: str, offset: int, length: int | None = None) -> bytes:
        data, _ = self.timed_get_range(name, offset, length)
        return data

    def size(self, name: str) -> int:
        return self._backend.size(name)

    def exists(self, name: str) -> bool:
        return self._backend.exists(name)

    def delete(self, name: str) -> None:
        self._backend.delete(name)

    def list_blobs(self, prefix: str = "") -> list[str]:
        return self._backend.list_blobs(prefix)

    def close(self) -> None:
        """Close this store's lazy pipeline and the backend's."""
        super().close()
        self._backend.close()

    # -- timed operations -------------------------------------------------------

    def timed_get(self, name: str) -> tuple[bytes, RequestRecord]:
        """Fetch a whole blob, returning its simulated request timing.

        Returns
        -------
        ``(data, record)`` — the blob bytes plus the virtual-clock
        :class:`RequestRecord` this request was charged (no real time
        passes; the simulator never sleeps).
        """
        data = self._backend.get(name)
        record = self._make_record(name, len(data))
        if self._record_metrics:
            self.metrics.record(record)
        return data, record

    def timed_get_range(
        self, name: str, offset: int, length: int | None = None
    ) -> tuple[bytes, RequestRecord]:
        """Fetch a byte range, returning its simulated request timing.

        Returns
        -------
        ``(data, record)`` like :meth:`timed_get`, with the transfer time
        charged for the truncated range actually returned.
        """
        data = self._backend.get_range(name, offset, length)
        record = self._make_record(name, len(data))
        if self._record_metrics:
            self.metrics.record(record)
        return data, record

    def timed_read(self, request: RangeRead) -> tuple[bytes, RequestRecord]:
        """Execute one :class:`RangeRead` with timing.

        Returns
        -------
        ``(data, record)`` exactly as :meth:`timed_get_range` would for the
        request's ``(blob, offset, length)``.
        """
        return self.timed_get_range(request.blob, request.offset, request.length)

    def timed_sequential(
        self, requests: Iterable[RangeRead]
    ) -> tuple[list[bytes], list[RequestRecord]]:
        """Execute dependent, back-to-back reads (each waits for the previous).

        This is the access pattern of hierarchical indexes (B-trees, skip
        lists) traversing node by node; the total simulated latency is the
        *sum* of the individual request latencies — the opposite timing
        semantics of :meth:`timed_batch`, which charges one concurrent wave.

        Returns
        -------
        ``(payloads, records)`` in request order; callers sum the records'
        ``total_ms`` to get the end-to-end sequential latency.
        """
        payloads: list[bytes] = []
        records: list[RequestRecord] = []
        for request in requests:
            data, record = self.timed_read(request)
            payloads.append(data)
            records.append(record)
        return payloads, records

    def timed_batch(
        self, requests: Iterable[RangeRead], max_concurrency: int = 32
    ) -> tuple[list[bytes], BatchRecord]:
        """Execute independent reads as a single concurrent batch.

        This is the access pattern of IoU Sketch: all requests are issued at
        once, so the batch's wait time is the *maximum* first-byte latency
        (per concurrency wave) rather than the sum, and the download time is
        bounded by aggregate bandwidth.

        Returns
        -------
        ``(payloads, batch)`` — payloads in request order plus one
        :class:`BatchRecord` covering the whole concurrent batch.
        """
        request_list = list(requests)
        if max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        payloads: list[bytes] = []
        records: list[RequestRecord] = []
        total_wait = 0.0
        total_download = 0.0
        # Requests beyond the thread-pool size run in successive waves.
        for start in range(0, len(request_list), max_concurrency):
            wave = request_list[start : start + max_concurrency]
            wave_records = []
            for request in wave:
                data = self._backend.get_range(request.blob, request.offset, request.length)
                record = self._make_record(request.blob, len(data))
                payloads.append(data)
                wave_records.append(record)
            if wave_records:
                total_wait += max(record.wait_ms for record in wave_records)
                total_download += self._latency.batch_transfer_ms(
                    [record.nbytes for record in wave_records]
                )
            records.extend(wave_records)
        batch = BatchRecord(
            requests=tuple(records), wait_ms=total_wait, download_ms=total_download
        )
        if self._record_metrics:
            self.metrics.record_batch(batch)
        return payloads, batch

    # -- helpers ----------------------------------------------------------------

    def _make_record(self, blob: str, nbytes: int) -> RequestRecord:
        return RequestRecord(
            blob=blob,
            nbytes=nbytes,
            wait_ms=self._latency.sample_first_byte_ms(),
            download_ms=self._latency.transfer_ms(nbytes),
        )
