"""Coalescing read pipeline between callers and the parallel fetcher.

Airphant's query path issues *batches* of small range reads against one or
two blobs (superposts inside the compacted blob, documents inside corpus
blobs).  Issuing each logical read as its own store request wastes request
quota and first-byte waits whenever ranges repeat or sit next to each other.
:class:`ReadPipeline` sits between callers and
:class:`~repro.storage.parallel.ParallelFetcher` and, per batch:

1. **deduplicates** identical ranges (one physical request serves them all);
2. **coalesces** adjacent/overlapping ranges on the same blob — optionally
   bridging gaps up to ``max_gap`` bytes — into fewer, larger requests;
3. serves repeated ranges from a bounded **LRU block cache** without touching
   the store at all.

Logical payloads are sliced back out of the physical payloads, so callers
observe byte-for-byte the same results as raw fetching (including end-of-blob
truncation, which slicing reproduces exactly).  Everything the pipeline saved
or spent is accounted in :class:`PipelineStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.observability import MetricsRegistry, MirroredStats, get_registry
from repro.observability.tracing import span
from repro.storage.base import ObjectStore, RangeRead
from repro.storage.metrics import BatchRecord
from repro.storage.parallel import FetchResult, ParallelFetcher

#: Cache key of one bounded logical range.
_RangeKey = tuple[str, int, int]

#: PipelineStats field -> (registry counter name, help) mirrored on update.
_PIPELINE_COUNTERS: dict[str, tuple[str, str]] = {
    "requests_in": (
        "airphant_pipeline_logical_requests_total",
        "Logical range reads handed to the read pipeline",
    ),
    "requests_out": (
        "airphant_pipeline_physical_requests_total",
        "Physical range reads the pipeline issued to the store",
    ),
    "batches": (
        "airphant_pipeline_batches_total",
        "Physical batches issued (at most one per pipeline fetch)",
    ),
    "cache_hits": (
        "airphant_pipeline_cache_hits_total",
        "Logical requests answered from the block cache",
    ),
    "cache_misses": (
        "airphant_pipeline_cache_misses_total",
        "Logical requests that needed bytes from the store",
    ),
    "coalesced_requests": (
        "airphant_pipeline_coalesced_requests_total",
        "Logical requests folded into a wider or shared physical request",
    ),
    "bytes_requested": (
        "airphant_pipeline_bytes_requested_total",
        "Bytes covered by logical requests (what raw fetching would transfer)",
    ),
    "bytes_fetched": (
        "airphant_pipeline_bytes_fetched_total",
        "Bytes actually transferred from the store (includes bridged gaps)",
    ),
}


@dataclass
class PipelineStats(MirroredStats):
    """What one :class:`ReadPipeline` received, issued, and saved.

    Updates go through :meth:`~repro.observability.MirroredStats.add`,
    which is atomic (its own lock, so pool and server threads can report
    concurrently) and mirrors every increment into the bound
    :class:`~repro.observability.MetricsRegistry` — the unified accounting
    path ``/metrics`` exports.  Field reads stay plain attributes;
    :meth:`~repro.observability.MirroredStats.snapshot` gives a consistent
    point-in-time copy.
    """

    _COUNTER_TABLE = _PIPELINE_COUNTERS

    #: Logical range reads handed to :meth:`ReadPipeline.fetch`.
    requests_in: int = 0
    #: Physical range reads actually issued to the store.
    requests_out: int = 0
    #: Physical batches issued (at most one per :meth:`ReadPipeline.fetch`).
    batches: int = 0
    #: Logical requests answered from the block cache (no store traffic).
    cache_hits: int = 0
    #: Logical requests that needed bytes from the store.
    cache_misses: int = 0
    #: Logical requests folded into a wider or shared physical request.
    coalesced_requests: int = 0
    #: Bytes covered by logical requests (what raw fetching would transfer).
    bytes_requested: int = 0
    #: Bytes actually transferred from the store (includes bridged gaps).
    bytes_fetched: int = 0

    @property
    def requests_saved(self) -> int:
        """Store requests avoided by dedup + coalescing + caching."""
        return self.requests_in - self.requests_out

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (used by benchmarks)."""
        return {
            "requests_in": self.requests_in,
            "requests_out": self.requests_out,
            "requests_saved": self.requests_saved,
            "batches": self.batches,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "coalesced_requests": self.coalesced_requests,
            "bytes_requested": self.bytes_requested,
            "bytes_fetched": self.bytes_fetched,
        }


@dataclass(frozen=True)
class _Placement:
    """Where one logical request's bytes come from."""

    source: str  # "cache", "physical", or "empty"
    physical_index: int = 0
    start: int = 0  # slice start within the physical payload
    length: int | None = None  # slice length (None = to the end)
    payload: bytes = b""  # resolved bytes for "cache"/"empty" placements


@dataclass
class _Run:
    """One physical read covering a set of coalesced logical ranges."""

    blob: str
    start: int
    end: int  # exclusive
    keys: list[_RangeKey] = field(default_factory=list)

    def to_range_read(self) -> RangeRead:
        return RangeRead(blob=self.blob, offset=self.start, length=self.end - self.start)


class ReadPipeline:
    """Coalesces, deduplicates, and caches batched range reads.

    Parameters
    ----------
    fetcher:
        The :class:`ParallelFetcher` that executes physical batches.
    max_gap:
        Two bounded ranges on the same blob are merged into one physical read
        when the gap between them is at most this many bytes.  ``0`` (the
        default) merges only overlapping or exactly adjacent ranges, which
        never transfers a byte more than raw fetching would.
    cache_bytes:
        Byte budget of the LRU block cache keyed by exact logical range.
        ``0`` (the default) disables caching, keeping the pipeline a pure
        per-batch optimizer with no cross-query state.
    metrics:
        Registry the pipeline's :class:`PipelineStats` mirror into;
        defaults to the process-wide registry
        (:func:`repro.observability.get_registry`).

    Open-ended reads (``length=None``) pass through without coalescing or
    caching: their extent is unknown until the store answers, so neither
    optimization is sound for them.
    """

    def __init__(
        self,
        fetcher: ParallelFetcher,
        max_gap: int = 0,
        cache_bytes: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_gap < 0:
            raise ValueError("max_gap must be non-negative")
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        self._fetcher = fetcher
        self._max_gap = max_gap
        self._cache_bytes = cache_bytes
        self._cache: OrderedDict[_RangeKey, bytes] = OrderedDict()
        self._cached_bytes = 0
        # The cache is shared across server threads; all cache mutations
        # happen under this lock (the physical fetch itself runs outside it;
        # the stats object carries its own lock).
        self._lock = threading.Lock()
        self.stats = PipelineStats().bind(
            metrics if metrics is not None else get_registry()
        )

    @classmethod
    def for_store(
        cls,
        store: ObjectStore,
        max_concurrency: int = 32,
        max_gap: int = 0,
        cache_bytes: int = 0,
        metrics: MetricsRegistry | None = None,
    ) -> "ReadPipeline":
        """Build a pipeline with its own fetcher over ``store``."""
        return cls(
            ParallelFetcher(store, max_concurrency=max_concurrency),
            max_gap=max_gap,
            cache_bytes=cache_bytes,
            metrics=metrics,
        )

    @property
    def fetcher(self) -> ParallelFetcher:
        """The fetcher executing this pipeline's physical batches."""
        return self._fetcher

    @property
    def max_gap(self) -> int:
        """Largest same-blob gap (bytes) bridged by coalescing."""
        return self._max_gap

    @property
    def cache_bytes(self) -> int:
        """Byte budget of the block cache (0 = disabled)."""
        return self._cache_bytes

    @property
    def cached_bytes(self) -> int:
        """Bytes currently held by the block cache."""
        return self._cached_bytes

    def clear_cache(self) -> None:
        """Drop every cached block (call after the underlying blobs change)."""
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0

    def close(self) -> None:
        """Release the underlying fetcher's thread pool and the cache."""
        self.clear_cache()
        self._fetcher.close()

    def __enter__(self) -> "ReadPipeline":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- fetching ----------------------------------------------------------------

    def fetch(self, requests: list[RangeRead]) -> FetchResult:
        """Fetch all ``requests``, returning payloads in request order.

        At most one physical batch is issued; a batch fully served from the
        cache issues none (its :class:`BatchRecord` is empty with zero
        latency, which callers can detect via ``batch.requests``).

        Parameters
        ----------
        requests:
            Logical range reads; duplicates and overlaps are welcome — that
            is exactly what the pipeline optimizes.

        Returns
        -------
        A :class:`~repro.storage.parallel.FetchResult` whose payloads are
        byte-for-byte what raw fetching would have returned (end-of-blob
        truncation included) and whose batch record carries the timing of
        the *physical* batch.  Timing caveat: against a simulated store the
        recorded latency covers only the coalesced physical requests — the
        whole point — so it is not comparable with a raw per-request
        replay of the same logical batch.
        """
        if not requests:
            empty = BatchRecord(requests=(), wait_ms=0.0, download_ms=0.0)
            return FetchResult(payloads=[], batch=empty)

        with span("pipeline.fetch") as trace_span:
            placements, physical, deltas = self._plan(requests)
            # Commit everything known at planning time — including the physical
            # requests about to be issued — BEFORE the fetch: if the store fails
            # (e.g. retries exhausted), the batch must still be accounted, or
            # the pipeline counters would flatline exactly when the backend
            # counters spike and operators look at them.
            deltas["requests_out"] = len(physical)
            deltas["batches"] = 1 if physical else 0
            self.stats.add(**deltas)
            if physical:
                fetch = self._fetcher.fetch(physical)
            else:
                fetch = FetchResult(
                    payloads=[],
                    batch=BatchRecord(requests=(), wait_ms=0.0, download_ms=0.0),
                )

            payloads = self._resolve(requests, placements, fetch.payloads)
            fetched_bytes = sum(len(data) for data in fetch.payloads)
            self.stats.add(bytes_fetched=fetched_bytes)
            # The span mirrors exactly the deltas committed to PipelineStats,
            # so explain output is checkable against the counters to the byte.
            trace_span.set(
                requests=deltas["requests_in"],
                physical_requests=deltas["requests_out"],
                batches=deltas["batches"],
                cache_hits=deltas["cache_hits"],
                cache_misses=deltas["cache_misses"],
                coalesced=deltas["coalesced_requests"],
                bytes_requested=deltas["bytes_requested"],
                bytes_fetched=fetched_bytes,
                batch_ms=round(fetch.batch.total_ms, 3),
            )
        return FetchResult(payloads=payloads, batch=fetch.batch)

    # -- planning ----------------------------------------------------------------

    def _plan(
        self, requests: list[RangeRead]
    ) -> tuple[list[_Placement], list[RangeRead], dict[str, int]]:
        """Map logical requests to cache hits and coalesced physical reads.

        Returns the placements, the physical reads to issue, and the stats
        deltas of the planning phase — committed by :meth:`fetch` in one
        atomic :meth:`PipelineStats.add` together with the fetch outcome.
        """
        placements: list[_Placement | None] = [None] * len(requests)
        bounded: dict[_RangeKey, list[int]] = {}
        passthrough: list[int] = []
        deltas = {
            "requests_in": len(requests),
            "cache_hits": 0,
            "cache_misses": 0,
            "bytes_requested": 0,
            "coalesced_requests": 0,
        }

        with self._lock:
            for index, request in enumerate(requests):
                if request.length == 0:
                    # Zero-length reads need no bytes at all.
                    placements[index] = _Placement(source="empty")
                    continue
                if request.length is None:
                    passthrough.append(index)
                    deltas["cache_misses"] += 1
                    continue
                deltas["bytes_requested"] += request.length
                key = (request.blob, request.offset, request.length)
                cached = self._cache_get(key)
                if cached is not None:
                    placements[index] = _Placement(source="cache", payload=cached)
                    deltas["cache_hits"] += 1
                    continue
                deltas["cache_misses"] += 1
                bounded.setdefault(key, []).append(index)

        physical: list[RangeRead] = []
        # Open-ended reads pass through one-to-one, uncoalesced.
        for index in passthrough:
            placements[index] = _Placement(
                source="physical", physical_index=len(physical), start=0, length=None
            )
            physical.append(requests[index])

        runs = self._coalesce(sorted(bounded))
        coalesced = 0
        for run in runs:
            physical_index = len(physical)
            physical.append(run.to_range_read())
            folded = sum(len(bounded[key]) for key in run.keys)
            if folded > 1:
                coalesced += folded
            for key in run.keys:
                _, offset, length = key
                for index in bounded[key]:
                    placements[index] = _Placement(
                        source="physical",
                        physical_index=physical_index,
                        start=offset - run.start,
                        length=length,
                    )
        deltas["coalesced_requests"] = coalesced

        assert all(placement is not None for placement in placements)
        return placements, physical, deltas  # type: ignore[return-value]

    def _coalesce(self, keys: list[_RangeKey]) -> list[_Run]:
        """Merge sorted unique ranges into physical runs.

        ``keys`` is sorted by (blob, offset, length); ranges on the same blob
        merge while the next range starts within ``max_gap`` bytes of the
        current run's end (overlap and exact adjacency are gap 0).
        """
        runs: list[_Run] = []
        current: _Run | None = None
        for key in keys:
            blob, offset, length = key
            if (
                current is None
                or blob != current.blob
                or offset > current.end + self._max_gap
            ):
                current = _Run(blob=blob, start=offset, end=offset + length)
                runs.append(current)
            else:
                current.end = max(current.end, offset + length)
            current.keys.append(key)
        return runs

    def _resolve(
        self,
        requests: list[RangeRead],
        placements: list[_Placement],
        physical_payloads: list[bytes],
    ) -> list[bytes]:
        """Slice each logical payload out of its physical (or cached) source."""
        payloads: list[bytes] = []
        fills: list[tuple[_RangeKey, bytes]] = []
        for request, placement in zip(requests, placements):
            if placement.source == "empty":
                payloads.append(b"")
                continue
            if placement.source == "cache":
                payloads.append(placement.payload)
                continue
            source = physical_payloads[placement.physical_index]
            if placement.length is None:
                data = source[placement.start :]
            else:
                data = source[placement.start : placement.start + placement.length]
            payloads.append(data)
            if request.length is not None:
                fills.append(((request.blob, request.offset, request.length), data))
        if fills and self._cache_bytes > 0:
            with self._lock:
                for key, data in fills:
                    self._cache_put(key, data)
        return payloads

    # -- cache (callers hold self._lock) ------------------------------------------

    def _cache_get(self, key: _RangeKey) -> bytes | None:
        if self._cache_bytes <= 0:
            return None
        data = self._cache.get(key)
        if data is None:
            return None
        self._cache.move_to_end(key)
        return data

    def _cache_put(self, key: _RangeKey, data: bytes) -> None:
        if len(data) > self._cache_bytes:
            return  # a block larger than the whole budget is never cached
        previous = self._cache.pop(key, None)
        if previous is not None:
            self._cached_bytes -= len(previous)
        self._cache[key] = data
        self._cached_bytes += len(data)
        while self._cached_bytes > self._cache_bytes:
            _, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= len(evicted)
