"""URI-scheme registry resolving backend strings to object stores.

One string now names any storage backend the reproduction can talk to, so
the CLI, the service facade, and the benchmarks all share a single
``--store URI`` vocabulary:

===========================  ====================================================
URI                          Resolves to
===========================  ====================================================
``mem://``                   fresh :class:`~repro.storage.memory.InMemoryObjectStore`
``mem://name``               process-shared named in-memory store (tests/demos)
``file:///path`` or a bare   :class:`~repro.storage.local.LocalObjectStore`
path like ``./bucket``
``sim://[path]``             :class:`~repro.storage.simulated.SimulatedCloudStore`
                             over memory (or a local directory when a path is
                             given); latency-model knobs ride in the query string
``http(s)://host[:p]/pfx``   :class:`~repro.storage.httpstore.HTTPRangeStore`
``s3://bucket/prefix``       :class:`~repro.storage.s3.S3ObjectStore`
                             (``?endpoint=`` for MinIO-style services)
===========================  ====================================================

Query parameters configure the backend (e.g.
``sim://?region=asia-southeast1&straggler_probability=0.01`` or
``s3://idx?endpoint=http%3A//127.0.0.1%3A9000&region=us-east-1``); unknown
schemes and malformed URIs raise :class:`StoreURIError`.  Third parties can
:func:`register_scheme` their own backends; resolution composes with
:class:`~repro.storage.resilient.ResilientStore`, which wraps whatever the
registry returns (see :meth:`repro.service.config.ServiceConfig.wrap_store`).
"""

from __future__ import annotations

import threading
from typing import Callable
from urllib.parse import SplitResult, parse_qsl, unquote, urlsplit

from repro.storage.base import ObjectStore
from repro.storage.httpstore import HTTPRangeStore
from repro.storage.latency import REGION_PROFILES, AffineLatencyModel
from repro.storage.local import LocalObjectStore
from repro.storage.memory import InMemoryObjectStore
from repro.storage.s3 import S3ObjectStore
from repro.storage.simulated import SimulatedCloudStore

#: A factory receives the split URI plus its parsed query parameters.
StoreFactory = Callable[[SplitResult, dict[str, str]], ObjectStore]


class StoreURIError(ValueError):
    """A store URI that cannot be resolved (unknown scheme or malformed)."""


_registry_lock = threading.Lock()
_factories: dict[str, StoreFactory] = {}

#: Named ``mem://name`` stores shared across the process (so a build and a
#: later search in the same process hit the same bytes).
_named_memory_lock = threading.Lock()
_named_memory: dict[str, InMemoryObjectStore] = {}


def register_scheme(scheme: str, factory: StoreFactory, replace: bool = False) -> None:
    """Register ``factory`` to resolve ``scheme://...`` URIs.

    Parameters
    ----------
    scheme:
        The URI scheme, lowercase, without ``://``.
    factory:
        Called as ``factory(parts, params)`` with the ``urlsplit`` result
        and the de-duplicated query parameters; returns the store.
    replace:
        Allow overriding an existing registration (default: raise
        :class:`StoreURIError` on conflicts).
    """
    if not scheme or not scheme.isalnum():
        raise StoreURIError(f"invalid scheme {scheme!r}")
    key = scheme.lower()
    with _registry_lock:
        if key in _factories and not replace:
            raise StoreURIError(f"scheme {scheme!r} is already registered")
        _factories[key] = factory


def registered_schemes() -> tuple[str, ...]:
    """The sorted URI schemes :func:`open_store` currently understands."""
    with _registry_lock:
        return tuple(sorted(_factories))


def open_store(uri: str) -> ObjectStore:
    """Resolve a backend string to a ready-to-use :class:`ObjectStore`.

    Parameters
    ----------
    uri:
        A ``scheme://...`` URI from the table above, or a bare filesystem
        path (treated as ``file://``).

    Returns
    -------
    The resolved store.  The caller owns it (and may wrap it further, e.g.
    in a :class:`~repro.storage.resilient.ResilientStore`).

    Raises
    ------
    StoreURIError
        On an empty string, an unknown scheme, duplicate or unknown query
        parameters, or scheme-specific validation failures.
    """
    if not isinstance(uri, str) or not uri.strip():
        raise StoreURIError("store URI must be a non-empty string")
    uri = uri.strip()
    if "://" not in uri:
        # Bare paths keep the pre-registry CLI ergonomics: --store ./bucket.
        return LocalObjectStore(uri)
    scheme = uri.split("://", 1)[0].lower()
    if not scheme:
        raise StoreURIError(f"malformed store URI {uri!r}: empty scheme")
    with _registry_lock:
        factory = _factories.get(scheme)
    if factory is None:
        known = ", ".join(f"{name}://" for name in registered_schemes())
        raise StoreURIError(f"unknown store scheme {scheme!r} in {uri!r}; known: {known}")
    parts = urlsplit(uri)
    params: dict[str, str] = {}
    for key, value in parse_qsl(parts.query, keep_blank_values=True):
        if key in params:
            raise StoreURIError(f"duplicate query parameter {key!r} in {uri!r}")
        params[key] = value
    try:
        return factory(parts, params)
    except StoreURIError:
        raise
    except (TypeError, ValueError, KeyError) as error:
        raise StoreURIError(f"cannot open store {uri!r}: {error}") from error


def reset_named_memory_stores() -> None:
    """Forget all ``mem://name`` instances (test isolation helper)."""
    with _named_memory_lock:
        _named_memory.clear()


# -- built-in factories -------------------------------------------------------------


def _reject_params(params: dict[str, str], allowed: tuple[str, ...], uri: str) -> None:
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise StoreURIError(
            f"unknown query parameter(s) {', '.join(unknown)} in {uri!r}; "
            f"allowed: {', '.join(allowed) or '(none)'}"
        )


def _float_param(params: dict[str, str], key: str, uri: str) -> float | None:
    if key not in params:
        return None
    try:
        return float(params[key])
    except ValueError:
        raise StoreURIError(f"parameter {key!r} in {uri!r} must be a number") from None


def _local_path(parts: SplitResult) -> str:
    """Reassemble a filesystem path from netloc + path.

    ``file:///abs/dir`` → ``/abs/dir``; ``file://./bucket`` → ``./bucket``;
    ``sim://bucket/dir`` → ``bucket/dir``.
    """
    return unquote(f"{parts.netloc}{parts.path}")


def _make_memory(parts: SplitResult, params: dict[str, str]) -> ObjectStore:
    uri = parts.geturl()
    _reject_params(params, (), uri)
    if parts.path.strip("/"):
        raise StoreURIError(f"mem:// URIs take at most a name, got {uri!r}")
    name = parts.netloc
    if not name:
        return InMemoryObjectStore()
    with _named_memory_lock:
        store = _named_memory.get(name)
        if store is None:
            store = _named_memory[name] = InMemoryObjectStore()
        return store


def _make_file(parts: SplitResult, params: dict[str, str]) -> ObjectStore:
    uri = parts.geturl()
    _reject_params(params, (), uri)
    path = _local_path(parts)
    if not path:
        raise StoreURIError(f"file:// URI needs a path, got {uri!r}")
    return LocalObjectStore(path)


#: Latency-model knobs a ``sim://`` URI may set in its query string.
_SIM_PARAMS = (
    "first_byte_ms",
    "bandwidth_mb_per_s",
    "aggregate_bandwidth_mb_per_s",
    "jitter_sigma",
    "straggler_probability",
    "straggler_multiplier",
    "region",
    "seed",
)


def _make_simulated(parts: SplitResult, params: dict[str, str]) -> ObjectStore:
    uri = parts.geturl()
    _reject_params(params, _SIM_PARAMS, uri)
    model_kwargs: dict[str, object] = {}
    for key in _SIM_PARAMS:
        if key not in params:
            continue
        if key == "region":
            if params[key] not in REGION_PROFILES:
                known = ", ".join(sorted(REGION_PROFILES))
                raise StoreURIError(f"unknown region {params[key]!r} in {uri!r}; known: {known}")
            model_kwargs[key] = params[key]
        elif key == "seed":
            try:
                model_kwargs[key] = int(params[key])
            except ValueError:
                raise StoreURIError(f"parameter 'seed' in {uri!r} must be an integer") from None
        else:
            model_kwargs[key] = _float_param(params, key, uri)
    path = _local_path(parts)
    backend: ObjectStore = LocalObjectStore(path) if path else InMemoryObjectStore()
    return SimulatedCloudStore(backend=backend, latency_model=AffineLatencyModel(**model_kwargs))


def _make_http(parts: SplitResult, params: dict[str, str]) -> ObjectStore:
    uri = parts.geturl()
    _reject_params(params, ("timeout_s",), uri)
    if not parts.netloc:
        raise StoreURIError(f"http(s):// URI needs a host, got {uri!r}")
    base_url = f"{parts.scheme}://{parts.netloc}{parts.path}"
    timeout_s = _float_param(params, "timeout_s", uri)
    return HTTPRangeStore(base_url, timeout_s=timeout_s if timeout_s is not None else 10.0)


def _make_s3(parts: SplitResult, params: dict[str, str]) -> ObjectStore:
    uri = parts.geturl()
    _reject_params(params, ("endpoint", "region", "timeout_s"), uri)
    if not parts.netloc:
        raise StoreURIError(f"s3:// URI needs a bucket, got {uri!r}")
    endpoint = params.get("endpoint")
    if endpoint is not None and not endpoint.startswith(("http://", "https://")):
        raise StoreURIError(f"s3 endpoint must be an http(s) URL, got {endpoint!r}")
    timeout_s = _float_param(params, "timeout_s", uri)
    return S3ObjectStore(
        bucket=parts.netloc,
        prefix=unquote(parts.path).strip("/"),
        endpoint=endpoint,
        region=params.get("region", "us-east-1"),
        timeout_s=timeout_s if timeout_s is not None else 10.0,
    )


register_scheme("mem", _make_memory)
register_scheme("file", _make_file)
register_scheme("sim", _make_simulated)
register_scheme("http", _make_http)
register_scheme("https", _make_http)
register_scheme("s3", _make_s3)
