"""S3-compatible object-store adapter layered on the HTTP range store.

Speaks the subset of the S3 REST protocol Airphant needs against any
S3-compatible endpoint (AWS S3, MinIO, Ceph RGW, GCS's XML interop API, or
the in-test emulator) using *path-style* addressing:

* ``GET    {endpoint}/{bucket}/{key}``      — whole-object and ``Range`` reads;
* ``HEAD   {endpoint}/{bucket}/{key}``      — existence + ``Content-Length``;
* ``PUT    {endpoint}/{bucket}/{key}``      — uploads during builds;
* ``DELETE {endpoint}/{bucket}/{key}``      — stale-layout cleanup;
* ``GET    {endpoint}/{bucket}?list-type=2`` — paginated ListObjectsV2, which
  gives this backend the real :meth:`list_blobs` that plain HTTP lacks.

Requests are unsigned by default (public buckets, emulators with auth
disabled) or signed with **AWS Signature Version 4** when credentials are
available — from an explicit :class:`S3Credentials` or the conventional
``AWS_ACCESS_KEY_ID`` / ``AWS_SECRET_ACCESS_KEY`` / ``AWS_SESSION_TOKEN``
environment variables.  Everything is stdlib (``hmac``/``hashlib``/
``urllib``); no SDK is required.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import xml.etree.ElementTree as ElementTree
from dataclasses import dataclass
from datetime import datetime, timezone
from urllib.parse import parse_qsl, quote, urlencode, urlsplit

from repro.observability import MetricsRegistry
from repro.storage.base import TransientStoreError
from repro.storage.httpstore import HTTPRangeStore

#: Hash of the empty payload, used for bodyless requests (GET/HEAD/DELETE).
_EMPTY_SHA256 = hashlib.sha256(b"").hexdigest()


@dataclass(frozen=True)
class S3Credentials:
    """A static AWS-style credential triple used for SigV4 signing.

    Parameters
    ----------
    access_key / secret_key:
        The key pair identifying the caller.
    session_token:
        Optional STS token, sent (and signed) as ``x-amz-security-token``.
    """

    access_key: str
    secret_key: str
    session_token: str | None = None

    @classmethod
    def from_env(cls) -> "S3Credentials | None":
        """Build credentials from the conventional ``AWS_*`` environment.

        Returns
        -------
        An :class:`S3Credentials` when both ``AWS_ACCESS_KEY_ID`` and
        ``AWS_SECRET_ACCESS_KEY`` are set (plus ``AWS_SESSION_TOKEN`` when
        present), else ``None`` — meaning requests go out unsigned.
        """
        access_key = os.environ.get("AWS_ACCESS_KEY_ID", "")
        secret_key = os.environ.get("AWS_SECRET_ACCESS_KEY", "")
        if not access_key or not secret_key:
            return None
        return cls(
            access_key=access_key,
            secret_key=secret_key,
            session_token=os.environ.get("AWS_SESSION_TOKEN") or None,
        )


def _hmac_sha256(key: bytes, message: str) -> bytes:
    return hmac.new(key, message.encode("utf-8"), hashlib.sha256).digest()


def sign_v4(
    method: str,
    url: str,
    region: str,
    credentials: S3Credentials,
    payload_hash: str,
    now: datetime | None = None,
) -> dict[str, str]:
    """Compute AWS Signature Version 4 headers for one S3 request.

    Parameters
    ----------
    method / url:
        The request line being signed; the URL's query string participates
        in the canonical request, so listing parameters are covered.
    region:
        Signing region (``us-east-1`` for most S3-compatible emulators).
    credentials:
        The key pair (and optional session token) to sign with.
    payload_hash:
        Hex SHA-256 of the request body (the empty-body hash for GET/HEAD).
    now:
        Signing time; defaults to the current UTC time.

    Returns
    -------
    The headers to attach: ``x-amz-date``, ``x-amz-content-sha256``,
    ``Authorization``, and ``x-amz-security-token`` when a session token is
    in play.
    """
    parts = urlsplit(url)
    stamp = (now or datetime.now(timezone.utc)).strftime("%Y%m%dT%H%M%SZ")
    datestamp = stamp[:8]

    headers = {
        "host": parts.netloc,
        "x-amz-content-sha256": payload_hash,
        "x-amz-date": stamp,
    }
    if credentials.session_token:
        headers["x-amz-security-token"] = credentials.session_token
    signed_header_names = ";".join(sorted(headers))

    canonical_query = urlencode(
        sorted(parse_qsl(parts.query, keep_blank_values=True)), quote_via=quote
    )
    canonical_request = "\n".join(
        [
            method,
            # The path is already percent-encoded exactly as sent on the
            # wire (blob_url quotes it once); for S3, the canonical URI is
            # that single-encoded path verbatim — re-quoting here would
            # double-encode (%20 -> %2520) and break the signature for any
            # key containing quotable characters.
            parts.path or "/",
            canonical_query,
            "".join(f"{name}:{headers[name]}\n" for name in sorted(headers)),
            signed_header_names,
            payload_hash,
        ]
    )
    scope = f"{datestamp}/{region}/s3/aws4_request"
    string_to_sign = "\n".join(
        [
            "AWS4-HMAC-SHA256",
            stamp,
            scope,
            hashlib.sha256(canonical_request.encode("utf-8")).hexdigest(),
        ]
    )
    key = _hmac_sha256(f"AWS4{credentials.secret_key}".encode("utf-8"), datestamp)
    key = _hmac_sha256(key, region)
    key = _hmac_sha256(key, "s3")
    key = _hmac_sha256(key, "aws4_request")
    signature = hmac.new(key, string_to_sign.encode("utf-8"), hashlib.sha256).hexdigest()

    return {
        "x-amz-date": stamp,
        "x-amz-content-sha256": payload_hash,
        **(
            {"x-amz-security-token": credentials.session_token}
            if credentials.session_token
            else {}
        ),
        "Authorization": (
            f"AWS4-HMAC-SHA256 Credential={credentials.access_key}/{scope}, "
            f"SignedHeaders={signed_header_names}, Signature={signature}"
        ),
    }


class S3ObjectStore(HTTPRangeStore):
    """Path-style S3 :class:`~repro.storage.base.ObjectStore` adapter.

    Parameters
    ----------
    bucket:
        Bucket name, addressed path-style as ``{endpoint}/{bucket}/...``.
    prefix:
        Optional key prefix every blob name is nested under (a "directory"
        inside the bucket).
    endpoint:
        Base URL of the S3-compatible service (e.g. ``http://127.0.0.1:9000``
        for MinIO).  Defaults to AWS's regional endpoint.
    region:
        SigV4 signing region.
    credentials:
        Explicit credentials; when ``None`` they are read from the ``AWS_*``
        environment, and requests go out **unsigned** if none are set.
    timeout_s:
        Socket timeout per request, in seconds.
    metrics:
        Registry request counts and latencies are recorded into (labelled
        ``backend="s3"``); defaults to the process-wide registry.
    """

    _METRICS_BACKEND = "s3"

    def __init__(
        self,
        bucket: str,
        prefix: str = "",
        endpoint: str | None = None,
        region: str = "us-east-1",
        credentials: S3Credentials | None = None,
        timeout_s: float = 10.0,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if not bucket:
            raise ValueError("bucket must be non-empty")
        if endpoint is None:
            endpoint = f"https://s3.{region}.amazonaws.com"
        super().__init__(
            f"{endpoint.rstrip('/')}/{quote(bucket, safe='')}",
            timeout_s=timeout_s,
            metrics=metrics,
        )
        self._endpoint = endpoint.rstrip("/")
        self._bucket = bucket
        self._prefix = prefix.strip("/")
        self._region = region
        self._credentials = credentials if credentials is not None else S3Credentials.from_env()

    @property
    def bucket(self) -> str:
        """The addressed bucket name."""
        return self._bucket

    @property
    def prefix(self) -> str:
        """Key prefix blob names are nested under (may be empty)."""
        return self._prefix

    @property
    def is_signed(self) -> bool:
        """Whether requests carry SigV4 signatures (credentials available)."""
        return self._credentials is not None

    # -- key/URL mapping ---------------------------------------------------------

    def _key(self, name: str) -> str:
        """Map a blob name to its object key under the configured prefix."""
        return f"{self._prefix}/{name}" if self._prefix else name

    def blob_url(self, name: str) -> str:
        """Return the path-style object URL of blob ``name``."""
        if not name or name.startswith("/") or ".." in name.split("/"):
            raise ValueError(f"invalid blob name: {name!r}")
        return f"{self.base_url}/{quote(self._key(name), safe='/')}"

    def _headers(self, method: str, url: str, body: bytes | None) -> dict[str, str]:
        """SigV4-sign the request when credentials are configured."""
        if self._credentials is None:
            return {}
        payload_hash = hashlib.sha256(body or b"").hexdigest() if body else _EMPTY_SHA256
        return sign_v4(method, url, self._region, self._credentials, payload_hash)

    # -- listing (the operation plain HTTP cannot offer) -------------------------

    def total_bytes(self, prefix: str = "") -> int:
        """Summed blob sizes under ``prefix`` via the native listing.

        Overrides the HTTP parent's listing-manifest shortcut — S3 has a
        real LIST, so the generic enumerate-and-size path applies.
        """
        return sum(self.size(name) for name in self.list_blobs(prefix))

    def list_blobs(self, prefix: str = "") -> list[str]:
        """Enumerate blob names under ``prefix`` via paginated ListObjectsV2.

        Returns
        -------
        Sorted blob names with the store-level key prefix stripped, exactly
        like the local and in-memory backends.
        """
        full_prefix = self._key(prefix) if prefix else self._prefix
        strip = f"{self._prefix}/" if self._prefix else ""
        names: list[str] = []
        continuation: str | None = None
        while True:
            query: list[tuple[str, str]] = [("list-type", "2")]
            if full_prefix:
                query.append(("prefix", full_prefix))
            if continuation:
                query.append(("continuation-token", continuation))
            url = f"{self.base_url}?{urlencode(query, quote_via=quote)}"
            _, _, body = self._request("GET", url, name=prefix or "<list>")
            keys, continuation = _parse_list_objects(body)
            for key in keys:
                if strip and not key.startswith(strip):
                    continue  # defensive: server returned keys outside our prefix
                names.append(key[len(strip):])
            if not continuation:
                break
        return sorted(names)


def _parse_list_objects(body: bytes) -> tuple[list[str], str | None]:
    """Extract object keys + continuation token from a ListObjectsV2 answer.

    Tolerates both namespaced (AWS) and bare (emulator) XML tags.

    Returns
    -------
    ``(keys, next_continuation_token)`` — the token is ``None`` on the last
    page.
    """
    try:
        root = ElementTree.fromstring(body)
    except ElementTree.ParseError as error:
        raise TransientStoreError(f"unparseable ListObjectsV2 response: {error}") from error

    def local(tag: str) -> str:
        return tag.rsplit("}", 1)[-1]

    keys: list[str] = []
    token: str | None = None
    truncated = False
    for element in root.iter():
        name = local(element.tag)
        if name == "Contents":
            for child in element:
                if local(child.tag) == "Key" and child.text:
                    keys.append(child.text)
        elif name == "NextContinuationToken" and element.text:
            token = element.text
        elif name == "IsTruncated":
            truncated = (element.text or "").strip().lower() == "true"
    return keys, (token if truncated else None)
