"""Cost model comparing coupled and decoupled deployments (Section V-C)."""

from repro.cost.model import CostModel, PeakTroughWorkload

__all__ = ["CostModel", "PeakTroughWorkload"]
