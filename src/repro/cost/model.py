"""Analytic cost model of Section V-C (Figure 9).

The paper compares two deployment paradigms under a *peak-trough* workload:

* **Decoupled (Airphant)** — compute scales with the instantaneous workload;
  the index lives on cheap cloud storage.  Monthly cost is proportional to
  the time-weighted average throughput plus cloud-storage rent.
* **Coupled (Elasticsearch on local disks)** — the cluster must be sized for
  the peak at all times (scaling down would require rebalancing shards), and
  the index lives on more expensive local persistent disks.

All default prices and throughputs are the ones the paper reports for GCP
(e2-small / e2-medium VMs, Cloud Storage vs local PD, measured ops/s per
node, and per-engine storage expansion factors for a Windows-shaped corpus).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PeakTroughWorkload:
    """A periodic workload: ``peak_ops`` for a ``peak_fraction`` of the time.

    Identified in the paper by the triple (A, a, τ).
    """

    peak_ops: float
    trough_ops: float
    peak_fraction: float

    def __post_init__(self) -> None:
        if self.peak_ops < 0 or self.trough_ops < 0:
            raise ValueError("throughputs must be non-negative")
        if not 0.0 <= self.peak_fraction <= 1.0:
            raise ValueError("peak_fraction must be in [0, 1]")
        if self.trough_ops > self.peak_ops:
            raise ValueError("trough_ops must not exceed peak_ops")

    @property
    def average_ops(self) -> float:
        """Time-weighted average throughput A·τ + a·(1 − τ)."""
        return self.peak_ops * self.peak_fraction + self.trough_ops * (1.0 - self.peak_fraction)


@dataclass(frozen=True)
class CostModel:
    """Monthly cost model with the paper's measured defaults.

    Attributes
    ----------
    airphant_vm_monthly, elastic_vm_monthly:
        Monthly price of one query-serving VM (e2-small vs e2-medium).
    airphant_ops_per_second, elastic_ops_per_second:
        Measured single-node throughput (175 ms/op vs 6.49 ms/op).
    airphant_storage_per_gb_month, elastic_storage_per_gb_month:
        Cloud object storage vs local persistent disk price.
    airphant_storage_factor, elastic_storage_factor:
        Index bytes per byte of original data (measured on Windows).
    """

    airphant_vm_monthly: float = 13.23
    airphant_ops_per_second: float = 5.71
    airphant_storage_per_gb_month: float = 0.02
    airphant_storage_factor: float = 1.008

    elastic_vm_monthly: float = 26.46
    elastic_ops_per_second: float = 154.08
    elastic_storage_per_gb_month: float = 0.2
    elastic_storage_factor: float = 0.3316

    # -- per-paradigm monthly cost --------------------------------------------------

    def airphant_monthly_cost(self, workload: PeakTroughWorkload, data_gb: float) -> float:
        """Decoupled deployment: compute follows the workload, storage is cloud."""
        if data_gb < 0:
            raise ValueError("data_gb must be non-negative")
        compute = self.airphant_vm_monthly * workload.average_ops / self.airphant_ops_per_second
        storage = self.airphant_storage_per_gb_month * self.airphant_storage_factor * data_gb
        return compute + storage

    def elastic_monthly_cost(self, workload: PeakTroughWorkload, data_gb: float) -> float:
        """Coupled deployment: provisioned for the peak at all times, local disks."""
        if data_gb < 0:
            raise ValueError("data_gb must be non-negative")
        compute = self.elastic_vm_monthly * workload.peak_ops / self.elastic_ops_per_second
        storage = self.elastic_storage_per_gb_month * self.elastic_storage_factor * data_gb
        return compute + storage

    # -- comparisons --------------------------------------------------------------------

    def relative_cost(self, workload: PeakTroughWorkload, data_gb: float) -> float:
        """C_E / C_A: how much more the coupled deployment costs (Figure 9)."""
        airphant = self.airphant_monthly_cost(workload, data_gb)
        if airphant <= 0:
            raise ValueError("Airphant cost is zero; relative cost undefined")
        return self.elastic_monthly_cost(workload, data_gb) / airphant

    def asymptotic_relative_cost(self) -> float:
        """lim_{data → ∞} C_E / C_A ≈ 3.29 with the paper's prices."""
        return (self.elastic_storage_per_gb_month * self.elastic_storage_factor) / (
            self.airphant_storage_per_gb_month * self.airphant_storage_factor
        )

    def compute_relative_cost(self, workload: PeakTroughWorkload) -> float:
        """VM-cost-only ratio C_E / C_A (ignoring storage)."""
        airphant = self.airphant_vm_monthly * workload.average_ops / self.airphant_ops_per_second
        elastic = self.elastic_vm_monthly * workload.peak_ops / self.elastic_ops_per_second
        if airphant <= 0:
            raise ValueError("Airphant compute cost is zero; relative cost undefined")
        return elastic / airphant

    def breakeven_peak_fraction(self, data_gb: float, workload: PeakTroughWorkload) -> float | None:
        """Peak-time fraction τ at which the two paradigms cost the same.

        Returns ``None`` when one paradigm is cheaper for every τ in [0, 1].
        The workload's τ is ignored; its peak/trough throughputs are reused.
        """
        elastic = self.elastic_monthly_cost(workload, data_gb)
        per_op = self.airphant_vm_monthly / self.airphant_ops_per_second
        storage = self.airphant_storage_per_gb_month * self.airphant_storage_factor * data_gb
        # Solve per_op * (a + tau*(A - a)) + storage == elastic for tau.
        spread = workload.peak_ops - workload.trough_ops
        if spread <= 0:
            return None
        tau = ((elastic - storage) / per_op - workload.trough_ops) / spread
        if 0.0 <= tau <= 1.0:
            return tau
        return None
