"""Ranking statistics persisted next to an index's superposts.

Membership queries never need more than the superposts, but *ranked*
retrieval (``mode="topk_bm25"``) scores candidates with BM25, which needs
three things the sketch deliberately throws away:

* per-document lengths (in analyzer tokens) and the corpus totals they
  aggregate into (``N``, ``avgdl``);
* per-term document frequencies (the IDF input);
* per-``(term, document)`` term frequencies (the saturation input — and,
  because they are **exact**, a free false-positive filter: a superpost
  candidate whose stats show ``tf = 0`` for a query term provably does not
  contain it, so ranked queries never fetch document text just to discard
  it).

The Builder persists them as one versioned *stats blob*
(``{index}/stats.json``) written alongside the header and superpost blobs.
Like the header it is JSON — debuggable with standard tooling, a few MB at
the corpus scales the paper studies — and it is downloaded **once**, lazily,
on a searcher's first ranked query; every later ranked query scores from
memory.  Indexes built before this blob existed (any v1/v2 index without a
``stats.json``) stay fully readable for membership queries and reject the
ranked mode with the typed :class:`RankingUnsupportedError` instead of
failing obscurely.
"""

from __future__ import annotations

import json
import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Container, Iterable, Sequence

from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer

#: Blob name suffix of the persisted ranking statistics.
STATS_BLOB_SUFFIX = "stats.json"

#: Current (and only) stats blob format.
STATS_FORMAT_V1 = 1
SUPPORTED_STATS_VERSIONS = (STATS_FORMAT_V1,)

#: Magic marker guarding against accidental blob mixups.
_STATS_MAGIC = "airphant-stats"


class RankingUnsupportedError(Exception):
    """The index cannot answer ranked queries (typed, maps to HTTP 400).

    Raised when an index has no stats blob (it predates ranked retrieval)
    or its stats blob declares an unknown format version.  Membership
    queries against the same index keep working; rebuilding the index
    writes current stats and enables ``mode="topk_bm25"``.
    """

    def __init__(self, index_name: str, reason: str) -> None:
        super().__init__(
            f"index {index_name!r} does not support ranked retrieval: {reason}; "
            "rebuild the index to generate ranking statistics"
        )
        self.index_name = index_name
        self.reason = reason


@dataclass
class IndexStats:
    """Exact ranking statistics of one index (or index member).

    ``doc_lengths`` maps every indexed document to its length in analyzer
    tokens; ``term_frequencies`` maps each distinct term to its exact
    ``{posting: tf}`` postings.  Document frequency is derived
    (``len(term_frequencies[term])``), so it can never drift out of sync
    with the postings that define it.
    """

    num_documents: int = 0
    total_words: int = 0
    doc_lengths: dict[Posting, int] = field(default_factory=dict)
    term_frequencies: dict[str, dict[Posting, int]] = field(default_factory=dict)

    @property
    def average_length(self) -> float:
        """Mean document length in tokens (0.0 for an empty corpus)."""
        if self.num_documents == 0:
            return 0.0
        return self.total_words / self.num_documents

    def doc_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self.term_frequencies.get(term, ()))

    def term_frequency(self, term: str, posting: Posting) -> int:
        """Exact occurrences of ``term`` in the document at ``posting``."""
        postings = self.term_frequencies.get(term)
        if not postings:
            return 0
        return postings.get(posting, 0)


def build_stats(documents: Iterable[Document], tokenizer: Tokenizer) -> IndexStats:
    """Compute exact ranking statistics over already-parsed documents.

    Uses the same analyzer as the sketch build, so a term's stats postings
    agree exactly with its membership answer.
    """
    stats = IndexStats()
    for document in documents:
        tokens = tokenizer.tokenize(document.text)
        if document.ref in stats.doc_lengths:
            continue
        stats.doc_lengths[document.ref] = len(tokens)
        stats.total_words += len(tokens)
        for term, count in Counter(tokens).items():
            stats.term_frequencies.setdefault(term, {})[document.ref] = count
    stats.num_documents = len(stats.doc_lengths)
    return stats


def merge_stats(parts: Iterable[IndexStats]) -> IndexStats:
    """Aggregate per-member stats into corpus-wide stats.

    Members may transiently overlap (a document visible in both a fresh
    delta and the memtable mid-flush); merging keys everything by posting,
    so each document counts exactly once regardless.
    """
    merged = IndexStats()
    for part in parts:
        merged.doc_lengths.update(part.doc_lengths)
        for term, postings in part.term_frequencies.items():
            merged.term_frequencies.setdefault(term, {}).update(postings)
    merged.num_documents = len(merged.doc_lengths)
    merged.total_words = sum(merged.doc_lengths.values())
    return merged


def prune_stats(stats: IndexStats, removed: "Container[Posting]") -> IndexStats:
    """Stats with every posting in ``removed`` excised (the delete path).

    Ranking under pending deletes must score with the *surviving* corpus —
    ``N``, ``df``, ``avgdl`` all shrink — or BM25 would diverge from a fresh
    rebuild over the surviving documents.  Pruning is exact integer surgery
    on the aggregates, so the result is byte-identical to recomputing the
    stats from scratch without the condemned documents.  Returns ``stats``
    unchanged (same object) when nothing held is being removed.
    """
    doc_lengths = {
        posting: length
        for posting, length in stats.doc_lengths.items()
        if posting not in removed
    }
    if len(doc_lengths) == len(stats.doc_lengths):
        return stats
    term_frequencies: dict[str, dict[Posting, int]] = {}
    for term, postings in stats.term_frequencies.items():
        kept = {
            posting: tf for posting, tf in postings.items() if posting not in removed
        }
        if kept:
            term_frequencies[term] = kept
    return IndexStats(
        num_documents=len(doc_lengths),
        total_words=sum(doc_lengths.values()),
        doc_lengths=doc_lengths,
        term_frequencies=term_frequencies,
    )


def encode_stats(stats: IndexStats) -> bytes:
    """Serialize the stats blob (versioned JSON, blob names interned).

    Layout (v1): a ``blobs`` string table; ``docs`` as
    ``[blob_idx, offset, length, doc_len]`` rows (row index = document id
    within the blob); ``terms`` mapping each term to ``[doc_id, tf]`` pairs.
    """
    blob_ids: dict[str, int] = {}
    doc_ids: dict[Posting, int] = {}
    docs: list[list[int]] = []
    for posting in sorted(stats.doc_lengths):
        blob_id = blob_ids.setdefault(posting.blob, len(blob_ids))
        doc_ids[posting] = len(docs)
        docs.append(
            [blob_id, posting.offset, posting.length, stats.doc_lengths[posting]]
        )
    terms = {
        term: sorted(
            [doc_ids[posting], tf] for posting, tf in postings.items()
        )
        for term, postings in sorted(stats.term_frequencies.items())
    }
    payload = {
        "magic": _STATS_MAGIC,
        "version": STATS_FORMAT_V1,
        "num_documents": stats.num_documents,
        "total_words": stats.total_words,
        "blobs": [blob for blob, _ in sorted(blob_ids.items(), key=lambda kv: kv[1])],
        "docs": docs,
        "terms": terms,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_stats(data: bytes, index_name: str = "index") -> IndexStats:
    """Inverse of :func:`encode_stats`.

    Raises ``ValueError`` when the blob is not a stats blob at all, and the
    typed :class:`RankingUnsupportedError` when it declares a format version
    this reader does not know (the forward-compatibility contract of every
    other versioned blob in the index).
    """
    payload = json.loads(data.decode("utf-8"))
    if payload.get("magic") != _STATS_MAGIC:
        raise ValueError("not an Airphant stats blob")
    version = payload.get("version")
    if version not in SUPPORTED_STATS_VERSIONS:
        raise RankingUnsupportedError(
            index_name, f"unknown stats blob version {version!r}"
        )
    blobs: Sequence[str] = payload["blobs"]
    postings: list[Posting] = []
    doc_lengths: dict[Posting, int] = {}
    for blob_id, offset, length, doc_len in payload["docs"]:
        posting = Posting(blob=blobs[blob_id], offset=offset, length=length)
        postings.append(posting)
        doc_lengths[posting] = doc_len
    term_frequencies = {
        term: {postings[doc_id]: tf for doc_id, tf in pairs}
        for term, pairs in payload["terms"].items()
    }
    return IndexStats(
        num_documents=int(payload["num_documents"]),
        total_words=int(payload["total_words"]),
        doc_lengths=doc_lengths,
        term_frequencies=term_frequencies,
    )


def stats_blob_name(index_name: str) -> str:
    """The stats blob of ``index_name``."""
    return f"{index_name}/{STATS_BLOB_SUFFIX}"


def idf(num_documents: int, doc_frequency: int) -> float:
    """The BM25 inverse document frequency (Robertson-Spärck Jones form).

    ``ln(1 + (N - df + 0.5) / (df + 0.5))`` — strictly positive, so scores
    stay monotone in term frequency and normalize cleanly into [0, 1].
    """
    return math.log1p(
        (num_documents - doc_frequency + 0.5) / (doc_frequency + 0.5)
    )


__all__ = [
    "STATS_BLOB_SUFFIX",
    "STATS_FORMAT_V1",
    "SUPPORTED_STATS_VERSIONS",
    "IndexStats",
    "RankingUnsupportedError",
    "build_stats",
    "decode_stats",
    "encode_stats",
    "idf",
    "merge_stats",
    "prune_stats",
    "stats_blob_name",
]
