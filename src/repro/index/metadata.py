"""Index metadata persisted alongside the MHT in the header block.

Also defines the versioned *shard manifest* written by sharded builds: a
tiny JSON blob (``<index>/shards.json``) naming the per-shard sub-indexes
and their basic statistics.  Single-shard indexes never write one, so every
pre-sharding index layout keeps opening unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

#: Blob name (under the index prefix) of the shard manifest.
SHARD_MANIFEST_SUFFIX = "shards.json"

#: Magic marker of the shard-manifest format.
_SHARD_MANIFEST_MAGIC = "airphant-shards"
SHARD_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class IndexMetadata:
    """Describes one built Airphant index.

    Stored in the header blob so a Searcher (or an operator) can inspect what
    the index covers without re-profiling the corpus.
    """

    corpus_name: str
    num_documents: int
    num_terms: int
    num_words: int
    num_layers: int
    num_bins: int
    bins_per_layer: int
    num_common_words: int
    seed: int
    target_false_positives: float
    expected_false_positives: float
    format_version: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IndexMetadata":
        """Rebuild metadata from its serialized dictionary."""
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class ShardEntry:
    """One shard of a sharded index: its sub-index name plus basic stats."""

    name: str
    num_documents: int = 0
    num_terms: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "num_documents": self.num_documents,
            "num_terms": self.num_terms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardEntry":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=str(data["name"]),
            num_documents=int(data.get("num_documents", 0)),
            num_terms=int(data.get("num_terms", 0)),
        )


@dataclass(frozen=True)
class ShardManifest:
    """Versioned description of a sharded index's layout.

    Persisted as ``<index>/shards.json``.  ``shards`` lists the per-shard
    sub-index names (each with its own header/superpost blobs) in shard
    order, which the partitioner relies on: documents are routed to
    ``shards[partition(doc)]``.
    """

    index_name: str
    partitioner: str = "hash"
    shards: tuple[ShardEntry, ...] = ()
    format_version: int = SHARD_MANIFEST_VERSION
    #: Superpost codec version the shard sub-indexes were written with
    #: (distinct from ``format_version``, which versions this manifest's own
    #: schema).  Informational — each shard header re-states its codec, so
    #: shards of mixed vintage still open correctly.
    index_format_version: int = 1

    @property
    def num_shards(self) -> int:
        """Number of shards the index was built with."""
        return len(self.shards)

    @property
    def shard_names(self) -> list[str]:
        """Sub-index names in shard order."""
        return [shard.name for shard in self.shards]

    @staticmethod
    def blob_name(index_name: str) -> str:
        """Blob holding the manifest of ``index_name``."""
        return f"{index_name}/{SHARD_MANIFEST_SUFFIX}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (includes magic + version)."""
        return {
            "magic": _SHARD_MANIFEST_MAGIC,
            "format_version": self.format_version,
            "index_name": self.index_name,
            "partitioner": self.partitioner,
            "index_format_version": self.index_format_version,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardManifest":
        """Rebuild from :meth:`to_dict` output, validating magic and version."""
        if data.get("magic") != _SHARD_MANIFEST_MAGIC:
            raise ValueError("not an Airphant shard manifest")
        version = int(data.get("format_version", 0))
        if version < 1 or version > SHARD_MANIFEST_VERSION:
            raise ValueError(f"unsupported shard manifest version {version}")
        return cls(
            index_name=str(data["index_name"]),
            partitioner=str(data.get("partitioner", "hash")),
            shards=tuple(ShardEntry.from_dict(entry) for entry in data.get("shards", [])),
            format_version=version,
            index_format_version=int(data.get("index_format_version", 1)),
        )

    @classmethod
    def from_json(cls, payload: str | bytes) -> "ShardManifest":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))


def merge_shard_metadata(
    metadatas: "list[IndexMetadata]", partitioner: str = "hash"
) -> "IndexMetadata | None":
    """Aggregate per-shard metadata into one corpus-wide description.

    Counts sum across shards (the partitions are disjoint); ``num_terms``
    therefore counts a term once per shard it appears in.  Expected false
    positives add too: each shard contributes its own independent candidate
    set to a merged query answer.  Structural fields (bins, seed, accuracy
    target) come from the first shard — every shard is built with the same
    configuration.
    """
    if not metadatas:
        return None
    first = metadatas[0]
    return IndexMetadata(
        corpus_name=first.corpus_name.split("#shard-")[0],
        num_documents=sum(metadata.num_documents for metadata in metadatas),
        num_terms=sum(metadata.num_terms for metadata in metadatas),
        num_words=sum(metadata.num_words for metadata in metadatas),
        num_layers=max(metadata.num_layers for metadata in metadatas),
        num_bins=first.num_bins,
        bins_per_layer=first.bins_per_layer,
        num_common_words=sum(metadata.num_common_words for metadata in metadatas),
        seed=first.seed,
        target_false_positives=first.target_false_positives,
        expected_false_positives=sum(
            metadata.expected_false_positives for metadata in metadatas
        ),
        format_version=first.format_version,
        extra={"num_shards": len(metadatas), "partitioner": partitioner},
    )
