"""Index metadata persisted alongside the MHT in the header block."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class IndexMetadata:
    """Describes one built Airphant index.

    Stored in the header blob so a Searcher (or an operator) can inspect what
    the index covers without re-profiling the corpus.
    """

    corpus_name: str
    num_documents: int
    num_terms: int
    num_words: int
    num_layers: int
    num_bins: int
    bins_per_layer: int
    num_common_words: int
    seed: int
    target_false_positives: float
    expected_false_positives: float
    format_version: int = 1
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IndexMetadata":
        """Rebuild metadata from its serialized dictionary."""
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})
