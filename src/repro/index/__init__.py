"""Index building and persistence.

The Builder turns a corpus into a persisted IoU Sketch: it parses and
profiles the documents, runs the layer optimizer, constructs superposts,
compacts them into a single blob, and writes a header blob containing the
hash seeds, bin pointers, string table, and metadata (Sections III-C and
IV-C).
"""

from repro.index.builder import AirphantBuilder, BuiltIndex, BuiltShardedIndex
from repro.index.compaction import (
    HEADER_BLOB_SUFFIX,
    SUPERPOST_BLOB_SUFFIX,
    CompactedSketch,
    compact_sketch,
    decode_header,
    encode_header,
)
from repro.index.metadata import (
    SHARD_MANIFEST_SUFFIX,
    IndexMetadata,
    ShardEntry,
    ShardManifest,
)
from repro.index.sharding import (
    PARTITIONERS,
    SHARD_MARKER,
    partition_documents,
    read_shard_manifest,
    shard_index_name,
    write_shard_manifest,
)
from repro.index.updates import AppendOnlyIndexManager, IndexManifest
from repro.index.serialization import (
    StringTable,
    decode_superpost,
    decode_varint,
    encode_superpost,
    encode_varint,
)

__all__ = [
    "AirphantBuilder",
    "AppendOnlyIndexManager",
    "IndexManifest",
    "BuiltIndex",
    "BuiltShardedIndex",
    "CompactedSketch",
    "HEADER_BLOB_SUFFIX",
    "IndexMetadata",
    "PARTITIONERS",
    "SHARD_MANIFEST_SUFFIX",
    "SHARD_MARKER",
    "SUPERPOST_BLOB_SUFFIX",
    "ShardEntry",
    "ShardManifest",
    "StringTable",
    "compact_sketch",
    "decode_header",
    "decode_superpost",
    "decode_varint",
    "encode_header",
    "encode_superpost",
    "encode_varint",
    "partition_documents",
    "read_shard_manifest",
    "shard_index_name",
    "write_shard_manifest",
]
