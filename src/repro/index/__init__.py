"""Index building and persistence.

The Builder turns a corpus into a persisted IoU Sketch: it parses and
profiles the documents, runs the layer optimizer, constructs superposts,
compacts them into a single blob, and writes a header blob containing the
hash seeds, bin pointers, string table, and metadata (Sections III-C and
IV-C).
"""

from repro.index.builder import AirphantBuilder, BuiltIndex
from repro.index.compaction import (
    HEADER_BLOB_SUFFIX,
    SUPERPOST_BLOB_SUFFIX,
    CompactedSketch,
    compact_sketch,
    decode_header,
    encode_header,
)
from repro.index.metadata import IndexMetadata
from repro.index.updates import AppendOnlyIndexManager, IndexManifest
from repro.index.serialization import (
    StringTable,
    decode_superpost,
    decode_varint,
    encode_superpost,
    encode_varint,
)

__all__ = [
    "AirphantBuilder",
    "AppendOnlyIndexManager",
    "IndexManifest",
    "BuiltIndex",
    "CompactedSketch",
    "HEADER_BLOB_SUFFIX",
    "IndexMetadata",
    "SUPERPOST_BLOB_SUFFIX",
    "StringTable",
    "compact_sketch",
    "decode_header",
    "decode_superpost",
    "decode_varint",
    "encode_header",
    "encode_superpost",
    "encode_varint",
]
