"""Index building and persistence.

The Builder turns a corpus into a persisted IoU Sketch: it parses and
profiles the documents, runs the layer optimizer, constructs superposts,
compacts them into a single blob, and writes a header blob containing the
hash seeds, bin pointers, string table, and metadata (Sections III-C and
IV-C).
"""

from repro.index.builder import AirphantBuilder, BuiltIndex, BuiltShardedIndex
from repro.index.compaction import (
    HEADER_BLOB_SUFFIX,
    SUPERPOST_BLOB_SUFFIX,
    CompactedSketch,
    compact_sketch,
    decode_header,
    encode_header,
)
from repro.index.metadata import (
    SHARD_MANIFEST_SUFFIX,
    IndexMetadata,
    ShardEntry,
    ShardManifest,
)
from repro.index.sharding import (
    PARTITIONERS,
    SHARD_MARKER,
    partition_documents,
    read_shard_manifest,
    shard_index_name,
    write_shard_manifest,
)
from repro.index.layout import (
    LAYOUT_COACCESS,
    LAYOUT_PLAIN,
    LAYOUTS,
    coaccess_order,
    plain_order,
)
from repro.index.updates import AppendOnlyIndexManager, IndexManifest
from repro.index.serialization import (
    DEFAULT_FORMAT_VERSION,
    FORMAT_V1,
    FORMAT_V2,
    SUPPORTED_FORMAT_VERSIONS,
    StringTable,
    decode_superpost,
    decode_varint,
    encode_superpost,
    encode_varint,
    uncompressed_superpost_bytes,
)

__all__ = [
    "AirphantBuilder",
    "AppendOnlyIndexManager",
    "IndexManifest",
    "BuiltIndex",
    "BuiltShardedIndex",
    "CompactedSketch",
    "DEFAULT_FORMAT_VERSION",
    "FORMAT_V1",
    "FORMAT_V2",
    "HEADER_BLOB_SUFFIX",
    "IndexMetadata",
    "LAYOUTS",
    "LAYOUT_COACCESS",
    "LAYOUT_PLAIN",
    "PARTITIONERS",
    "SHARD_MANIFEST_SUFFIX",
    "SHARD_MARKER",
    "SUPERPOST_BLOB_SUFFIX",
    "SUPPORTED_FORMAT_VERSIONS",
    "ShardEntry",
    "ShardManifest",
    "StringTable",
    "coaccess_order",
    "compact_sketch",
    "decode_header",
    "decode_superpost",
    "decode_varint",
    "encode_header",
    "encode_superpost",
    "encode_varint",
    "partition_documents",
    "plain_order",
    "read_shard_manifest",
    "shard_index_name",
    "uncompressed_superpost_bytes",
    "write_shard_manifest",
]
