"""Binary serialization of superposts.

Superposts are serialized to compact byte arrays before being concatenated
into the superpost blob.  The paper uses Protocol Buffers plus a string
compression table that replaces repeated blob names inside postings with
small integer keys; we implement an equivalent varint-based codec so the
bytes-per-superpost (and hence download volume) behaves the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.superpost import Superpost
from repro.parsing.documents import Posting


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``pos``.

    Returns ``(value, next_position)``.
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


@dataclass
class StringTable:
    """Interns blob names so postings store small integer keys.

    This is the "compression of repeated strings within postings into integer
    keys" of Section IV-C: most corpora pack many documents into a handful of
    blobs, so replacing the blob name in every posting by an index into this
    table dramatically shrinks superpost bytes.
    """

    names: list[str] = field(default_factory=list)
    _ids: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._ids = {name: index for index, name in enumerate(self.names)}

    def __len__(self) -> int:
        return len(self.names)

    def intern(self, name: str) -> int:
        """Return the integer key of ``name``, adding it if necessary."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        index = len(self.names)
        self.names.append(name)
        self._ids[name] = index
        return index

    def lookup(self, key: int) -> str:
        """Return the blob name for integer ``key``."""
        try:
            return self.names[key]
        except IndexError:
            raise KeyError(f"unknown string-table key {key}") from None

    def to_list(self) -> list[str]:
        """Serializable list representation (index = key)."""
        return list(self.names)

    @classmethod
    def from_list(cls, names: list[str]) -> "StringTable":
        """Rebuild a table from its serialized list."""
        return cls(names=list(names))


def encode_superpost(superpost: Superpost, string_table: StringTable) -> bytes:
    """Serialize a superpost to bytes.

    Layout: ``varint(count)`` followed by, for each posting in sorted order,
    ``varint(blob_key) varint(offset) varint(length)``.  Sorting makes the
    encoding deterministic and keeps offsets of adjacent documents close,
    which helps the varints stay short.
    """
    postings = superpost.sorted_postings()
    out = bytearray(encode_varint(len(postings)))
    for posting in postings:
        out += encode_varint(string_table.intern(posting.blob))
        out += encode_varint(posting.offset)
        out += encode_varint(posting.length)
    return bytes(out)


def decode_superpost(data: bytes, string_table: StringTable) -> Superpost:
    """Inverse of :func:`encode_superpost`."""
    count, pos = decode_varint(data, 0)
    postings: set[Posting] = set()
    for _ in range(count):
        blob_key, pos = decode_varint(data, pos)
        offset, pos = decode_varint(data, pos)
        length, pos = decode_varint(data, pos)
        postings.add(Posting(blob=string_table.lookup(blob_key), offset=offset, length=length))
    return Superpost(postings)
