"""Binary serialization of superposts.

Superposts are serialized to compact byte arrays before being concatenated
into the superpost blob.  The paper uses Protocol Buffers plus a string
compression table that replaces repeated blob names inside postings with
small integer keys; we implement an equivalent varint-based codec so the
bytes-per-superpost (and hence download volume) behaves the same way.

Two on-disk codec versions exist (negotiated through the header blob's
``format_version``; see :mod:`repro.index.compaction`):

* **v1** — ``varint(count)`` then one ``(blob_key, offset, length)`` varint
  triple per posting in sorted order.  Offsets are absolute, so every
  posting pays the full magnitude of its byte offset.
* **v2** — postings are grouped by blob key; each group stores its key and
  count once, then its postings sorted by offset with **delta-coded**
  offsets (lengths stay absolute).  Deltas between neighbouring documents
  are tiny compared to absolute offsets, so the varints collapse to one or
  two bytes — the dominant term in the measured ≥1.5× size reduction.

Both codecs emit postings in the global ``(blob, offset, length)`` sort
order, so decoders rebuild superposts with
:meth:`~repro.core.superpost.Superpost.from_sorted` and never re-sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.superpost import Superpost
from repro.parsing.documents import Posting

#: The original absolute-offset codec (readable forever).
FORMAT_V1 = 1
#: The blob-grouped, offset-delta codec (written by default).
FORMAT_V2 = 2
#: Codec versions this build can decode.
SUPPORTED_FORMAT_VERSIONS = (FORMAT_V1, FORMAT_V2)
#: Codec new indexes are written with unless the builder pins one.
DEFAULT_FORMAT_VERSION = FORMAT_V2


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, pos: int = 0) -> tuple[int, int]:
    """Decode a varint from ``data`` starting at ``pos``.

    Returns ``(value, next_position)``.
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


@dataclass
class StringTable:
    """Interns blob names so postings store small integer keys.

    This is the "compression of repeated strings within postings into integer
    keys" of Section IV-C: most corpora pack many documents into a handful of
    blobs, so replacing the blob name in every posting by an index into this
    table dramatically shrinks superpost bytes.
    """

    names: list[str] = field(default_factory=list)
    _ids: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._ids = {name: index for index, name in enumerate(self.names)}

    def __len__(self) -> int:
        return len(self.names)

    def intern(self, name: str) -> int:
        """Return the integer key of ``name``, adding it if necessary."""
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        index = len(self.names)
        self.names.append(name)
        self._ids[name] = index
        return index

    def lookup(self, key: int) -> str:
        """Return the blob name for integer ``key``."""
        try:
            return self.names[key]
        except IndexError:
            raise KeyError(f"unknown string-table key {key}") from None

    def to_list(self) -> list[str]:
        """Serializable list representation (index = key)."""
        return list(self.names)

    @classmethod
    def from_list(cls, names: list[str]) -> "StringTable":
        """Rebuild a table from its serialized list."""
        return cls(names=list(names))


def encode_superpost(
    superpost: Superpost, string_table: StringTable, format_version: int = FORMAT_V1
) -> bytes:
    """Serialize a superpost to bytes in the requested codec version.

    v1 layout: ``varint(count)`` followed by, for each posting in sorted
    order, ``varint(blob_key) varint(offset) varint(length)``.  Sorting makes
    the encoding deterministic and keeps offsets of adjacent documents close,
    which helps the varints stay short.

    v2 layout: ``varint(num_groups)`` followed by one group per distinct
    blob — ``varint(blob_key) varint(count)`` then ``count`` postings sorted
    by ``(offset, length)`` as ``varint(offset_delta) varint(length)``, where
    the first delta is the absolute offset and each later delta is the gap to
    the previous posting's offset.
    """
    if format_version == FORMAT_V1:
        return _encode_v1(superpost, string_table)
    if format_version == FORMAT_V2:
        return _encode_v2(superpost, string_table)
    raise ValueError(f"unsupported superpost codec version {format_version}")


def _encode_v1(superpost: Superpost, string_table: StringTable) -> bytes:
    postings = superpost.sorted_postings()
    out = bytearray(encode_varint(len(postings)))
    for posting in postings:
        out += encode_varint(string_table.intern(posting.blob))
        out += encode_varint(posting.offset)
        out += encode_varint(posting.length)
    return bytes(out)


def _encode_v2(superpost: Superpost, string_table: StringTable) -> bytes:
    # sorted_postings orders by (blob, offset, length), so postings of one
    # blob form a consecutive run already sorted by offset — exactly the
    # group order the codec wants, with non-negative offset deltas.
    postings = superpost.sorted_postings()
    groups: list[tuple[str, list[Posting]]] = []
    for posting in postings:
        if groups and groups[-1][0] == posting.blob:
            groups[-1][1].append(posting)
        else:
            groups.append((posting.blob, [posting]))
    out = bytearray(encode_varint(len(groups)))
    for blob, members in groups:
        out += encode_varint(string_table.intern(blob))
        out += encode_varint(len(members))
        previous = 0
        for posting in members:
            out += encode_varint(posting.offset - previous)
            out += encode_varint(posting.length)
            previous = posting.offset
    return bytes(out)


def decode_superpost(
    data: bytes, string_table: StringTable, format_version: int = FORMAT_V1
) -> Superpost:
    """Inverse of :func:`encode_superpost`, dispatching on the codec version.

    Both codecs emit postings in global sorted order, so the superpost is
    rebuilt through :meth:`~repro.core.superpost.Superpost.from_sorted` —
    no per-decode re-sort on the query hot path.
    """
    if format_version == FORMAT_V1:
        return _decode_v1(data, string_table)
    if format_version == FORMAT_V2:
        return _decode_v2(data, string_table)
    raise ValueError(f"unsupported superpost codec version {format_version}")


def _decode_v1(data: bytes, string_table: StringTable) -> Superpost:
    count, pos = decode_varint(data, 0)
    postings: list[Posting] = []
    for _ in range(count):
        blob_key, pos = decode_varint(data, pos)
        offset, pos = decode_varint(data, pos)
        length, pos = decode_varint(data, pos)
        postings.append(
            Posting(blob=string_table.lookup(blob_key), offset=offset, length=length)
        )
    return Superpost.from_sorted(postings)


def _decode_v2(data: bytes, string_table: StringTable) -> Superpost:
    num_groups, pos = decode_varint(data, 0)
    postings: list[Posting] = []
    for _ in range(num_groups):
        blob_key, pos = decode_varint(data, pos)
        blob = string_table.lookup(blob_key)
        count, pos = decode_varint(data, pos)
        offset = 0
        for _ in range(count):
            delta, pos = decode_varint(data, pos)
            length, pos = decode_varint(data, pos)
            offset += delta
            postings.append(Posting(blob=blob, offset=offset, length=length))
    return Superpost.from_sorted(postings)


def _varint_length(value: int) -> int:
    """Bytes :func:`encode_varint` spends on ``value`` (no allocation)."""
    return 1 if value == 0 else (value.bit_length() + 6) // 7


def uncompressed_superpost_bytes(superpost: Superpost) -> int:
    """Size of ``superpost`` with blob names inline and absolute offsets.

    The no-compression baseline (no string table, no delta coding) that the
    compression ablation and the ``airphant_codec_bytes_raw_total`` metric
    measure actual encodings against.
    """
    total = _varint_length(len(superpost))
    for posting in superpost.postings:
        name_length = len(posting.blob.encode("utf-8"))
        total += _varint_length(name_length) + name_length
        total += _varint_length(posting.offset) + _varint_length(posting.length)
    return total
