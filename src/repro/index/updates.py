"""Append-only index updates (the paper's "frequent corpus updates" future work).

Airphant's Builder produces immutable indexes, which suits read-oriented
corpora.  When new documents do arrive, rebuilding the whole index per batch
would be wasteful, so this module implements the standard append-only
pattern on top of the unchanged Builder and Searcher:

* :class:`AppendOnlyIndexManager` keeps a tiny JSON *manifest* blob next to
  the base index listing the delta indexes created so far;
* :meth:`AppendOnlyIndexManager.append` builds a new delta index over just
  the new documents (same Builder, same configuration);
* :meth:`AppendOnlyIndexManager.open_searcher` returns a
  :class:`~repro.search.multi.MultiIndexSearcher` over the base plus all
  deltas;
* :meth:`AppendOnlyIndexManager.compact` folds every delta back into a single
  base index by enumerating all indexed documents from cloud storage and
  re-running the Builder, then resets the manifest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder, BuiltIndex, BuiltShardedIndex
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.serialization import decode_superpost
from repro.index.sharding import read_shard_manifest
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer
from repro.storage.base import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime import cycle
    from repro.search.multi import MultiIndexSearcher
    from repro.search.replication import HedgingPolicy


@dataclass(frozen=True)
class IndexManifest:
    """Names of the base index and its delta indexes."""

    base_index: str
    delta_indexes: tuple[str, ...] = ()

    @property
    def all_indexes(self) -> list[str]:
        """Base first, then deltas in creation order."""
        return [self.base_index, *self.delta_indexes]


class AppendOnlyIndexManager:
    """Manages a base IoU Sketch index plus append-only delta indexes."""

    MANIFEST_SUFFIX = "manifest.json"

    def __init__(
        self,
        store: ObjectStore,
        base_index: str,
        config: SketchConfig | None = None,
        delta_config: SketchConfig | None = None,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self._store = store
        self._base_index = base_index
        self._config = config if config is not None else SketchConfig()
        # Deltas are usually much smaller than the base corpus; a smaller bin
        # budget keeps their headers tiny unless the caller overrides it.
        self._delta_config = delta_config if delta_config is not None else self._config
        self._tokenizer = tokenizer

    @property
    def manifest_blob(self) -> str:
        """Blob holding the manifest."""
        return f"{self._base_index}/{self.MANIFEST_SUFFIX}"

    # -- manifest ------------------------------------------------------------------

    def manifest(self) -> IndexManifest:
        """Read the current manifest (an empty one if none was written yet)."""
        if not self._store.exists(self.manifest_blob):
            return IndexManifest(base_index=self._base_index)
        payload = json.loads(self._store.get(self.manifest_blob).decode("utf-8"))
        return IndexManifest(
            base_index=payload["base_index"],
            delta_indexes=tuple(payload["delta_indexes"]),
        )

    def _write_manifest(self, manifest: IndexManifest) -> None:
        payload = {
            "base_index": manifest.base_index,
            "delta_indexes": list(manifest.delta_indexes),
        }
        self._store.put(self.manifest_blob, json.dumps(payload).encode("utf-8"))

    # -- building ------------------------------------------------------------------

    def build_base(self, documents: Sequence[Document], corpus_name: str = "corpus") -> BuiltIndex:
        """Build (or rebuild) the base index and reset the manifest."""
        builder = AirphantBuilder(self._store, config=self._config, tokenizer=self._tokenizer)
        built = builder.build_from_documents(
            documents, index_name=self._base_index, corpus_name=corpus_name
        )
        self._write_manifest(IndexManifest(base_index=self._base_index))
        return built

    def append(self, documents: Sequence[Document], corpus_name: str = "delta") -> BuiltIndex:
        """Index newly arrived documents as a fresh delta index."""
        documents = list(documents)
        if not documents:
            raise ValueError("append() needs at least one document")
        manifest = self.manifest()
        delta_name = f"{self._base_index}/delta-{len(manifest.delta_indexes):04d}"
        builder = AirphantBuilder(
            self._store, config=self._delta_config, tokenizer=self._tokenizer
        )
        built = builder.build_from_documents(documents, index_name=delta_name, corpus_name=corpus_name)
        self._write_manifest(
            IndexManifest(
                base_index=manifest.base_index,
                delta_indexes=manifest.delta_indexes + (delta_name,),
            )
        )
        return built

    # -- searching ------------------------------------------------------------------

    def open_searcher(
        self,
        max_concurrency: int = 32,
        hedging: "HedgingPolicy | None" = None,
        query_cache_size: int = 0,
    ) -> "MultiIndexSearcher":
        """Open a searcher spanning the base index and every delta."""
        # Imported lazily: repro.search depends on repro.index, so importing
        # the searcher at module load time would create an import cycle.
        from repro.search.multi import MultiIndexSearcher

        manifest = self.manifest()
        return MultiIndexSearcher.open(
            self._store,
            manifest.all_indexes,
            tokenizer=self._tokenizer,
            max_concurrency=max_concurrency,
            hedging=hedging,
            query_cache_size=query_cache_size,
        )

    # -- compaction ------------------------------------------------------------------

    def _member_indexes(self) -> list[str]:
        """Every single-shard sub-index behind the base and its deltas.

        A sharded base has no top-level header blob; its shard sub-indexes
        (named by ``shards.json``) stand in for it, so enumeration and
        compaction work against sharded bases too.
        """
        names: list[str] = []
        for index_name in self.manifest().all_indexes:
            shard_manifest = read_shard_manifest(self._store, index_name)
            if shard_manifest is not None:
                names.extend(shard_manifest.shard_names)
            else:
                names.append(index_name)
        return names

    def indexed_documents(self) -> list[Document]:
        """Enumerate every document covered by the base and delta indexes.

        The union of all superposts (plus the common-word lists) of an index
        is exactly its set of postings, and each posting locates a document's
        bytes, so the documents can be re-read directly from cloud storage.
        """
        postings: set[Posting] = set()
        for index_name in self._member_indexes():
            header_blob = f"{index_name}/{HEADER_BLOB_SUFFIX}"
            if not self._store.exists(header_blob):
                continue
            compacted = decode_header(self._store.get(header_blob))
            pointers = [
                pointer
                for layer in compacted.mht.pointers
                for pointer in layer
                if not pointer.is_empty
            ]
            pointers.extend(
                pointer
                for pointer in compacted.mht.common_word_pointers.values()
                if not pointer.is_empty
            )
            for pointer in pointers:
                payload = self._store.get_range(pointer.blob, pointer.offset, pointer.length)
                postings |= decode_superpost(payload, compacted.string_table).postings
        documents = []
        for posting in sorted(postings):
            data = self._store.get_range(posting.blob, posting.offset, posting.length)
            documents.append(Document(ref=posting, text=data.decode("utf-8", errors="replace")))
        return documents

    def compact(self, corpus_name: str = "corpus") -> BuiltIndex | "BuiltShardedIndex":
        """Fold all deltas back into the base index.

        The base keeps its layout: a sharded base is rebuilt with the same
        shard count and partitioner (returning a
        :class:`~repro.index.builder.BuiltShardedIndex`), a plain base stays
        single-shard.  Old delta blobs are deleted after the new base index
        is persisted.
        """
        manifest = self.manifest()
        shard_manifest = read_shard_manifest(self._store, self._base_index)
        documents = self.indexed_documents()
        builder = AirphantBuilder(
            self._store,
            config=self._config,
            tokenizer=self._tokenizer,
            num_shards=shard_manifest.num_shards if shard_manifest is not None else 1,
            partitioner=shard_manifest.partitioner if shard_manifest is not None else "hash",
        )
        built = builder.build_from_documents(
            documents, index_name=self._base_index, corpus_name=corpus_name
        )
        self._write_manifest(IndexManifest(base_index=self._base_index))
        for delta_name in manifest.delta_indexes:
            for blob in self._store.list_blobs(prefix=f"{delta_name}/"):
                self._store.delete(blob)
        return built
