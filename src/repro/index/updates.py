"""Append-only index updates (the paper's "frequent corpus updates" future work).

Airphant's Builder produces immutable indexes, which suits read-oriented
corpora.  When new documents do arrive, rebuilding the whole index per batch
would be wasteful, so this module implements the standard append-only
pattern on top of the unchanged Builder and Searcher:

* :class:`AppendOnlyIndexManager` keeps a tiny JSON *manifest* blob next to
  the base index listing the delta indexes created so far;
* :meth:`AppendOnlyIndexManager.append` builds a new delta index over just
  the new documents (same Builder, same configuration);
* :meth:`AppendOnlyIndexManager.open_searcher` returns a
  :class:`~repro.search.multi.MultiIndexSearcher` over the base plus all
  deltas;
* :meth:`AppendOnlyIndexManager.compact` folds every delta back into a single
  base index by enumerating all indexed documents from cloud storage and
  re-running the Builder, then resets the manifest.

Compaction is *generation-safe*: every compaction builds the new base under a
fresh ``gen-NNNNNNNN/`` prefix and commits it with one atomic manifest write,
so a concurrent reader either sees the complete old snapshot or the complete
new one — never a half-built mix.  The blobs a swap strands (the previous
base build and the folded deltas) are recorded in the manifest's ``retired``
list and physically deleted one compaction *later*, giving readers that
opened the old manifest a full generation of grace before their blobs
disappear.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, AbstractSet, Sequence

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder, BuiltIndex, BuiltShardedIndex
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.serialization import decode_superpost
from repro.index.sharding import read_shard_manifest
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer
from repro.storage.base import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime import cycle
    from repro.search.multi import MultiIndexSearcher
    from repro.search.replication import HedgingPolicy


#: Path fragment that marks a generational base build (written by
#: :meth:`AppendOnlyIndexManager.compact`; never a directly addressable
#: catalog entry, like ``/delta-`` and ``/shard-`` members).
GENERATION_MARKER = "/gen-"


def generation_index_name(base_index: str, generation: int) -> str:
    """Blob prefix of ``base_index``'s generation-``generation`` base build."""
    return f"{base_index}{GENERATION_MARKER}{generation:08d}"


#: Path fragment holding an index's point-in-time snapshots (never a
#: directly addressable catalog entry).
SNAPSHOT_MARKER = "/snapshots/"

#: Blob-name suffix of one snapshot record.
SNAPSHOT_SUFFIX = ".snap.json"

#: Snapshot record format version.
SNAPSHOT_FORMAT_V1 = 1

#: Names a snapshot may carry: filesystem-safe, no separators.
_SNAPSHOT_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def snapshot_blob_name(base_index: str, snapshot: str) -> str:
    """Blob holding snapshot ``snapshot`` of ``base_index``."""
    return f"{base_index}{SNAPSHOT_MARKER}{snapshot}{SNAPSHOT_SUFFIX}"


class SnapshotRestoreError(Exception):
    """The snapshot exists but its referenced blobs no longer do.

    Raised when a restore finds a member build missing — e.g. the snapshot
    pinned a legacy in-place base that a later full rebuild overwrote, or
    its blobs were purged outside the manager's pin protection.  Typed so
    the service layer can answer 409 instead of restoring a broken timeline.
    """

    def __init__(self, base_index: str, snapshot: str, missing: Sequence[str]) -> None:
        super().__init__(
            f"snapshot {snapshot!r} of index {base_index!r} is not restorable: "
            f"missing index build(s) {', '.join(missing)}"
        )
        self.base_index = base_index
        self.snapshot = snapshot
        self.missing = tuple(missing)


@dataclass(frozen=True)
class IndexManifest:
    """One consistent snapshot of an index: base build, deltas, generation.

    ``base_index`` is the *logical* name (the catalog entry and blob-prefix
    root); ``active_base`` is the blob prefix actually holding the current
    base build — equal to ``base_index`` until the first compaction moves it
    under a ``gen-NNNNNNNN/`` prefix.  ``next_delta`` numbers deltas
    monotonically across compactions so a fresh delta never reuses (and
    overwrites) the prefix of a retired one that readers may still hold.
    ``retired`` lists prefixes stranded by the previous swap, physically
    purged at the *next* compaction.
    """

    base_index: str
    delta_indexes: tuple[str, ...] = ()
    generation: int = 0
    active_base: str | None = None
    next_delta: int | None = None
    retired: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.active_base is None:
            object.__setattr__(self, "active_base", self.base_index)
        if self.next_delta is None:
            object.__setattr__(self, "next_delta", len(self.delta_indexes))

    @property
    def all_indexes(self) -> list[str]:
        """Active base first, then deltas in creation order."""
        return [self.active_base, *self.delta_indexes]


@dataclass(frozen=True)
class SnapshotInfo:
    """One named point-in-time snapshot of an index.

    A snapshot *is* a copy of the generational manifest (plus the pending
    tombstone set at creation time): the base build and delta prefixes it
    references are immutable, so freezing the manifest freezes the whole
    index.  The manager's purge paths skip prefixes any snapshot pins, which
    is what keeps the referenced blobs alive past later compactions.
    """

    snapshot: str
    base_index: str
    created_at: float
    manifest: IndexManifest
    tombstones: tuple[Posting, ...] = ()

    def to_dict(self) -> dict:
        """JSON-serializable description (the snapshot record payload)."""
        return {
            "version": SNAPSHOT_FORMAT_V1,
            "snapshot": self.snapshot,
            "base_index": self.base_index,
            "created_at": self.created_at,
            "manifest": {
                "base_index": self.manifest.base_index,
                "delta_indexes": list(self.manifest.delta_indexes),
                "generation": self.manifest.generation,
                "active_base": self.manifest.active_base,
                "next_delta": self.manifest.next_delta,
            },
            "tombstones": [[ref.blob, ref.offset, ref.length] for ref in self.tombstones],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SnapshotInfo":
        """Inverse of :meth:`to_dict`."""
        manifest = payload["manifest"]
        return cls(
            snapshot=str(payload["snapshot"]),
            base_index=str(payload["base_index"]),
            created_at=float(payload.get("created_at", 0.0)),
            manifest=IndexManifest(
                base_index=manifest["base_index"],
                delta_indexes=tuple(manifest["delta_indexes"]),
                generation=int(manifest.get("generation", 0)),
                active_base=manifest.get("active_base"),
                next_delta=manifest.get("next_delta"),
            ),
            tombstones=tuple(
                Posting(blob=str(blob), offset=int(offset), length=int(length))
                for blob, offset, length in payload.get("tombstones", ())
            ),
        )


class AppendOnlyIndexManager:
    """Manages a base IoU Sketch index plus append-only delta indexes."""

    MANIFEST_SUFFIX = "manifest.json"

    def __init__(
        self,
        store: ObjectStore,
        base_index: str,
        config: SketchConfig | None = None,
        delta_config: SketchConfig | None = None,
        tokenizer: Tokenizer | None = None,
        format_version: int | None = None,
        layout: str | None = None,
    ) -> None:
        self._store = store
        self._base_index = base_index
        self._config = config if config is not None else SketchConfig()
        # Deltas are usually much smaller than the base corpus; a smaller bin
        # budget keeps their headers tiny unless the caller overrides it.
        self._delta_config = delta_config if delta_config is not None else self._config
        self._tokenizer = tokenizer
        # Every rebuild this manager performs — base builds, delta builds, and
        # compactions — writes this codec version, so compacting a live index
        # whose base was written as v1 upgrades it to the current default.
        self._format_version = format_version
        self._layout = layout

    @property
    def manifest_blob(self) -> str:
        """Blob holding the manifest."""
        return f"{self._base_index}/{self.MANIFEST_SUFFIX}"

    # -- manifest ------------------------------------------------------------------

    def manifest(self) -> IndexManifest:
        """Read the current manifest (an empty one if none was written yet).

        Pre-generation manifests (no ``generation``/``active_base`` fields)
        load with their defaults, so indexes written by older builds keep
        working unchanged.
        """
        if not self._store.exists(self.manifest_blob):
            return IndexManifest(base_index=self._base_index)
        payload = json.loads(self._store.get(self.manifest_blob).decode("utf-8"))
        deltas = tuple(payload["delta_indexes"])
        return IndexManifest(
            base_index=payload["base_index"],
            delta_indexes=deltas,
            generation=int(payload.get("generation", 0)),
            active_base=payload.get("active_base"),
            next_delta=payload.get("next_delta"),
            retired=tuple(payload.get("retired", ())),
        )

    def _write_manifest(self, manifest: IndexManifest) -> None:
        """Commit one snapshot atomically (a single blob PUT is the swap)."""
        payload = {
            "base_index": manifest.base_index,
            "delta_indexes": list(manifest.delta_indexes),
            "generation": manifest.generation,
            "active_base": manifest.active_base,
            "next_delta": manifest.next_delta,
            "retired": list(manifest.retired),
        }
        self._store.put(self.manifest_blob, json.dumps(payload).encode("utf-8"))

    # -- building ------------------------------------------------------------------

    def build_base(self, documents: Sequence[Document], corpus_name: str = "corpus") -> BuiltIndex:
        """Build (or rebuild) the base index in place and reset the manifest.

        The rebuild keeps the legacy in-place layout (blobs directly under
        the index name).  Whatever the previous manifest referenced — a
        generational base, deltas — is marked retired and purged by the next
        compaction (or :meth:`reset`).
        """
        old = self.manifest()
        builder = AirphantBuilder(
            self._store,
            config=self._config,
            tokenizer=self._tokenizer,
            format_version=self._format_version,
            layout=self._layout,
        )
        built = builder.build_from_documents(
            documents, index_name=self._base_index, corpus_name=corpus_name
        )
        stranded = tuple(
            name
            for name in dict.fromkeys((*old.all_indexes, *old.retired))
            # The in-place blobs were just overwritten by this rebuild; a
            # retirement entry for them would purge the *new* base later.
            if name != self._base_index
        )
        self._write_manifest(
            IndexManifest(
                base_index=self._base_index,
                generation=old.generation + 1,
                next_delta=old.next_delta,
                retired=stranded,
            )
        )
        return built

    def append(self, documents: Sequence[Document], corpus_name: str = "delta") -> BuiltIndex:
        """Index newly arrived documents as a fresh delta index."""
        documents = list(documents)
        if not documents:
            raise ValueError("append() needs at least one document")
        manifest = self.manifest()
        delta_name = f"{self._base_index}/delta-{manifest.next_delta:04d}"
        builder = AirphantBuilder(
            self._store,
            config=self._delta_config,
            tokenizer=self._tokenizer,
            format_version=self._format_version,
            layout=self._layout,
        )
        built = builder.build_from_documents(documents, index_name=delta_name, corpus_name=corpus_name)
        self._write_manifest(
            IndexManifest(
                base_index=manifest.base_index,
                delta_indexes=manifest.delta_indexes + (delta_name,),
                generation=manifest.generation,
                active_base=manifest.active_base,
                next_delta=manifest.next_delta + 1,
                retired=manifest.retired,
            )
        )
        return built

    # -- searching ------------------------------------------------------------------

    def open_searcher(
        self,
        max_concurrency: int = 32,
        hedging: "HedgingPolicy | None" = None,
        query_cache_size: int = 0,
    ) -> "MultiIndexSearcher":
        """Open a searcher spanning the base index and every delta."""
        # Imported lazily: repro.search depends on repro.index, so importing
        # the searcher at module load time would create an import cycle.
        from repro.search.multi import MultiIndexSearcher

        manifest = self.manifest()
        return MultiIndexSearcher.open(
            self._store,
            manifest.all_indexes,
            tokenizer=self._tokenizer,
            max_concurrency=max_concurrency,
            hedging=hedging,
            query_cache_size=query_cache_size,
        )

    # -- compaction ------------------------------------------------------------------

    def _member_indexes(self) -> list[str]:
        """Every single-shard sub-index behind the base and its deltas.

        A sharded base has no top-level header blob; its shard sub-indexes
        (named by ``shards.json``) stand in for it, so enumeration and
        compaction work against sharded bases too.
        """
        names: list[str] = []
        for index_name in self.manifest().all_indexes:
            shard_manifest = read_shard_manifest(self._store, index_name)
            if shard_manifest is not None:
                names.extend(shard_manifest.shard_names)
            else:
                names.append(index_name)
        return names

    def indexed_documents(self, exclude: AbstractSet[Posting] = frozenset()) -> list[Document]:
        """Enumerate every document covered by the base and delta indexes.

        The union of all superposts (plus the common-word lists) of an index
        is exactly its set of postings, and each posting locates a document's
        bytes, so the documents can be re-read directly from cloud storage.
        ``exclude`` (the pending tombstone set) drops condemned postings
        *before* their bytes are fetched — deleted documents cost no reads.
        """
        postings: set[Posting] = set()
        for index_name in self._member_indexes():
            header_blob = f"{index_name}/{HEADER_BLOB_SUFFIX}"
            if not self._store.exists(header_blob):
                continue
            compacted = decode_header(self._store.get(header_blob))
            pointers = [
                pointer
                for layer in compacted.mht.pointers
                for pointer in layer
                if not pointer.is_empty
            ]
            pointers.extend(
                pointer
                for pointer in compacted.mht.common_word_pointers.values()
                if not pointer.is_empty
            )
            for pointer in pointers:
                payload = self._store.get_range(pointer.blob, pointer.offset, pointer.length)
                postings |= decode_superpost(
                    payload, compacted.string_table, compacted.format_version
                ).postings
        documents = []
        for posting in sorted(postings - set(exclude)):
            data = self._store.get_range(posting.blob, posting.offset, posting.length)
            documents.append(Document(ref=posting, text=data.decode("utf-8", errors="replace")))
        return documents

    def compact(
        self,
        corpus_name: str = "corpus",
        exclude: AbstractSet[Posting] = frozenset(),
    ) -> BuiltIndex | "BuiltShardedIndex":
        """Fold all deltas into a fresh generational base and swap atomically.

        The new base is built under ``<name>/gen-NNNNNNNN/`` (keeping the old
        base's shard count and partitioner; a sharded base returns a
        :class:`~repro.index.builder.BuiltShardedIndex`), then committed with
        a single manifest write — the swap.  Readers that already hold the
        old manifest keep a complete, untouched snapshot: the blobs it
        references are only *marked* retired now and physically deleted at
        the **next** compaction, after every reasonable reader has reopened.

        ``exclude`` (the pending tombstone set) is how deletes become
        physical: condemned documents are left out of the rebuilt base — and
        out of its ranking stats — so after the swap no tombstone filtering
        is needed for them anywhere.  Prefixes pinned by a snapshot are never
        purged; they stay on the retired list until the snapshot is deleted.
        """
        manifest = self.manifest()
        shard_manifest = read_shard_manifest(self._store, manifest.active_base)
        documents = self.indexed_documents(exclude=exclude)
        generation = manifest.generation + 1
        new_base = generation_index_name(self._base_index, generation)
        builder = AirphantBuilder(
            self._store,
            config=self._config,
            tokenizer=self._tokenizer,
            num_shards=shard_manifest.num_shards if shard_manifest is not None else 1,
            partitioner=shard_manifest.partitioner if shard_manifest is not None else "hash",
            format_version=self._format_version,
            layout=self._layout,
        )
        built = builder.build_from_documents(
            documents, index_name=new_base, corpus_name=corpus_name
        )
        # The whole old snapshot — including a legacy in-place base — gets
        # one generation of grace before deletion.  (_purge_index_blobs
        # deletes an in-place base's own blobs only, never the shared prefix.)
        stranded = tuple(manifest.all_indexes)
        # Grace expired for what the *previous* swap stranded — except what a
        # snapshot still pins, which stays on the retired list for later.
        pinned = self._snapshot_pins()
        carried = tuple(
            name for name in manifest.retired if name in pinned and name not in stranded
        )
        # The atomic swap: one blob PUT moves every reader to the new snapshot.
        self._write_manifest(
            IndexManifest(
                base_index=self._base_index,
                generation=generation,
                active_base=new_base,
                next_delta=manifest.next_delta,
                retired=stranded + carried,
            )
        )
        for name in manifest.retired:
            if name not in pinned:
                self._purge_index_blobs(name)
        return built

    def reset(self) -> None:
        """Delete every delta/generation artifact and reset the manifest.

        Used by full rebuilds over an existing name: the rebuild writes a
        fresh in-place base, so old deltas, generational bases, and the
        retired backlog are all garbage — readers are expected to reopen
        (the service invalidates its catalog after builds).  Prefixes pinned
        by a surviving snapshot are kept (on the retired list); the facade's
        rebuild path deletes the snapshots first, making the reset total.
        """
        manifest = self.manifest()
        pinned = self._snapshot_pins()
        kept: list[str] = []
        for name in dict.fromkeys(manifest.retired + tuple(manifest.all_indexes)):
            if name == self._base_index:
                continue
            if name in pinned:
                kept.append(name)
            else:
                self._purge_index_blobs(name)
        self._write_manifest(
            IndexManifest(
                base_index=self._base_index,
                generation=manifest.generation + 1,
                # Keep delta numbering monotonic: a reader holding the
                # pre-reset manifest must never see a retired delta prefix
                # reused for fresh content.
                next_delta=manifest.next_delta,
                retired=tuple(kept),
            )
        )

    # -- snapshots -----------------------------------------------------------------

    def snapshot_blob(self, snapshot: str) -> str:
        """Blob holding snapshot ``snapshot`` of this index."""
        return snapshot_blob_name(self._base_index, snapshot)

    def _snapshot_pins(self) -> set[str]:
        """Every index prefix some snapshot still references (purge guard)."""
        pinned: set[str] = set()
        for info in self.list_snapshots():
            pinned.update(info.manifest.all_indexes)
        return pinned

    def create_snapshot(
        self, snapshot: str, tombstones: Sequence[Posting] = ()
    ) -> SnapshotInfo:
        """Freeze the current manifest under ``snapshot`` (point-in-time copy).

        The snapshot captures the manifest *and* the pending tombstone set,
        so a restore reproduces exactly what queries answered at creation
        time — deletes awaiting compaction included.  Re-creating an existing
        name overwrites it.  Raises ``ValueError`` on names the blob layout
        cannot hold.
        """
        if not _SNAPSHOT_NAME.match(snapshot):
            raise ValueError(
                f"invalid snapshot name {snapshot!r}; expected 1-64 characters "
                "from [A-Za-z0-9._-] starting with a letter or digit"
            )
        manifest = self.manifest()
        info = SnapshotInfo(
            snapshot=snapshot,
            base_index=self._base_index,
            created_at=time.time(),
            manifest=manifest,
            tombstones=tuple(sorted(set(tombstones))),
        )
        self._store.put(
            self.snapshot_blob(snapshot), json.dumps(info.to_dict()).encode("utf-8")
        )
        return info

    def get_snapshot(self, snapshot: str) -> SnapshotInfo:
        """Read one snapshot record; raises ``KeyError`` if it does not exist."""
        blob = self.snapshot_blob(snapshot)
        if not self._store.exists(blob):
            raise KeyError(snapshot)
        return SnapshotInfo.from_dict(json.loads(self._store.get(blob).decode("utf-8")))

    def list_snapshots(self) -> list[SnapshotInfo]:
        """Every snapshot of this index, sorted by name."""
        prefix = f"{self._base_index}{SNAPSHOT_MARKER}"
        infos: list[SnapshotInfo] = []
        for blob in self._store.list_blobs(prefix=prefix):
            if not blob.endswith(SNAPSHOT_SUFFIX):
                continue
            try:
                infos.append(
                    SnapshotInfo.from_dict(json.loads(self._store.get(blob).decode("utf-8")))
                )
            except (ValueError, KeyError, TypeError):
                continue  # not a snapshot record; never block the listing
        return sorted(infos, key=lambda info: info.snapshot)

    def delete_snapshot(self, snapshot: str) -> None:
        """Drop one snapshot record; raises ``KeyError`` if it does not exist.

        The blobs it pinned become purgeable at the next compaction (they
        stay on the manifest's retired list until then).
        """
        blob = self.snapshot_blob(snapshot)
        if not self._store.exists(blob):
            raise KeyError(snapshot)
        self._store.delete(blob)

    def delete_all_snapshots(self) -> int:
        """Drop every snapshot (the full-rebuild path); returns how many."""
        prefix = f"{self._base_index}{SNAPSHOT_MARKER}"
        blobs = [
            blob
            for blob in self._store.list_blobs(prefix=prefix)
            if blob.endswith(SNAPSHOT_SUFFIX)
        ]
        for blob in blobs:
            self._store.delete(blob)
        return len(blobs)

    def restore_snapshot(self, snapshot: str) -> SnapshotInfo:
        """Point the index back at ``snapshot``'s manifest (one atomic PUT).

        The current timeline's builds become retired (purged by a later
        compaction, unless another snapshot pins them); ``generation`` and
        ``next_delta`` keep counting from the *maximum* of both timelines so
        post-restore builds never reuse an abandoned prefix.  Raises
        ``KeyError`` for an unknown snapshot and
        :class:`SnapshotRestoreError` when the pinned blobs are gone.
        """
        info = self.get_snapshot(snapshot)
        target = info.manifest
        missing = [
            name for name in target.all_indexes if not self._index_build_exists(name)
        ]
        if missing:
            raise SnapshotRestoreError(self._base_index, snapshot, missing)
        current = self.manifest()
        referenced = set(target.all_indexes)
        stranded = tuple(
            name
            for name in dict.fromkeys((*current.all_indexes, *current.retired))
            if name not in referenced
        )
        self._write_manifest(
            IndexManifest(
                base_index=self._base_index,
                delta_indexes=target.delta_indexes,
                generation=max(current.generation, target.generation),
                active_base=target.active_base,
                next_delta=max(current.next_delta or 0, target.next_delta or 0),
                retired=stranded,
            )
        )
        return info

    def _index_build_exists(self, index_name: str) -> bool:
        """Whether a base/delta build still has its header (restore guard)."""
        if self._store.exists(f"{index_name}/{HEADER_BLOB_SUFFIX}"):
            return True
        return read_shard_manifest(self._store, index_name) is not None

    def _purge_index_blobs(self, index_name: str) -> None:
        """Physically delete one retired base/delta build.

        Generational bases and deltas own their whole prefix; the legacy
        in-place base shares its prefix with the manifest, deltas, and
        generation directories, so only its own blobs (header, superposts,
        shard manifest, ``shard-NNNN/`` members) are deleted.
        """
        if index_name != self._base_index:
            for blob in self._store.list_blobs(prefix=f"{index_name}/"):
                self._store.delete(blob)
            return
        from repro.index.compaction import SUPERPOST_BLOB_SUFFIX
        from repro.index.metadata import ShardManifest
        from repro.index.sharding import SHARD_MARKER

        self._store.delete(f"{index_name}/{HEADER_BLOB_SUFFIX}")
        self._store.delete(f"{index_name}/{SUPERPOST_BLOB_SUFFIX}")
        self._store.delete(ShardManifest.blob_name(index_name))
        for blob in self._store.list_blobs(prefix=f"{index_name}{SHARD_MARKER}"):
            self._store.delete(blob)
