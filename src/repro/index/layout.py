"""Co-access-aware superpost layout.

Where a superpost sits inside the compacted blob never affects correctness —
but it decides what the coalescing read pipeline can do with a query's batch.
A query for one word fetches L superposts (one per layer); laid out
layer-major (all of layer 0, then all of layer 1, …) those L ranges sit
megabytes apart and the pipeline must issue L physical requests.  Laid out
*co-access-aware* — the bins a word hashes to placed next to each other —
the same batch collapses into one fat contiguous range read.

The layout problem is a weighted linear arrangement (NP-hard in general), so
the builder uses a deterministic greedy chain walk over the co-access graph:

* **nodes** are ``(layer, bin)`` pairs;
* **edges** connect the consecutive-layer bins of each word's hash chain,
  weighted by the word's document frequency (how many documents — and hence
  how much query traffic under an occurrence-shaped workload — share those
  bins);
* starting from the heaviest node, the walk repeatedly appends the heaviest
  unplaced neighbour of the node just placed, starting a new chain from the
  heaviest remaining node whenever it runs out of neighbours.

Frequent words therefore get their whole chain laid out contiguously (the
superposts are concatenated with no padding, so chain members are *exactly*
adjacent and merge even at ``coalesce_gap=0``), and words sharing bins with
frequent words land nearby, within reach of a small ``coalesce_gap``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.sketch import IoUSketch

#: Legacy layer-major placement (what v1 indexes always used).
LAYOUT_PLAIN = "plain"
#: Greedy co-access chain placement (default for v2 indexes).
LAYOUT_COACCESS = "coaccess"
#: Valid layout names, for CLI/builder validation.
LAYOUTS = (LAYOUT_PLAIN, LAYOUT_COACCESS)

#: One placement slot: (layer index, bin index).
LayoutNode = tuple[int, int]


def plain_order(num_layers: int, bins_per_layer: int) -> list[LayoutNode]:
    """Layer-major placement: all of layer 0, then layer 1, and so on."""
    return [
        (layer, bin_index)
        for layer in range(num_layers)
        for bin_index in range(bins_per_layer)
    ]


def coaccess_order(
    sketch: "IoUSketch", word_weights: Mapping[str, int]
) -> list[LayoutNode]:
    """Blob placement order of the hashed bins, heaviest co-access first.

    ``word_weights`` maps each inserted word to its weight (document
    frequency); common words are skipped — they are answered from a single
    exact pointer, so adjacency buys them nothing.  The returned order
    contains every ``(layer, bin)`` node exactly once and is deterministic
    for a given sketch + weights (ties break on node index).
    """
    num_layers = sketch.num_layers
    bins_per_layer = sketch.bins_per_layer
    every_node = plain_order(num_layers, bins_per_layer)
    if num_layers < 2 or not word_weights:
        return every_node

    edge_weights: dict[tuple[LayoutNode, LayoutNode], int] = defaultdict(int)
    node_weights: dict[LayoutNode, int] = defaultdict(int)
    for word, weight in word_weights.items():
        if weight <= 0 or word in sketch.common_words:
            continue
        chain = list(enumerate(sketch.hasher.bins_of(word)))
        for node in chain:
            node_weights[node] += weight
        for left, right in zip(chain, chain[1:]):
            edge_weights[(left, right)] += weight

    neighbours: dict[LayoutNode, list[tuple[int, LayoutNode]]] = defaultdict(list)
    for (left, right), weight in edge_weights.items():
        neighbours[left].append((weight, right))
        neighbours[right].append((weight, left))
    for candidates in neighbours.values():
        candidates.sort(key=lambda item: (-item[0], item[1]))

    seeds = sorted(every_node, key=lambda node: (-node_weights.get(node, 0), node))
    order: list[LayoutNode] = []
    placed: set[LayoutNode] = set()
    for seed in seeds:
        if seed in placed:
            continue
        current = seed
        order.append(current)
        placed.add(current)
        while True:
            following = next(
                (node for _, node in neighbours.get(current, ()) if node not in placed),
                None,
            )
            if following is None:
                break
            order.append(following)
            placed.add(following)
            current = following
    return order
