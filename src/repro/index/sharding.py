"""Document partitioning for sharded index builds.

A sharded index splits one corpus into N disjoint document partitions and
builds an ordinary single-shard IoU Sketch over each.  Shards are
independent, so builds parallelize across cores and a query fans its
superpost reads across all shards in one batch (union of per-shard
answers — the partitions are disjoint, so no candidate is lost or
double-counted).

Two partitioners are provided:

* ``"hash"`` — a stable hash of the document's ``(blob, offset, length)``
  reference.  Deterministic across processes and insertion orders, so a
  rebuild routes every document to the same shard.
* ``"round-robin"`` — position modulo N.  Perfectly balanced, but stable
  only for an identical document ordering.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from repro.index.metadata import ShardManifest
from repro.parsing.documents import Document
from repro.storage.base import ObjectStore

#: Partitioner names a sharded build may select.
PARTITIONERS = ("hash", "round-robin")

#: Path fragment marking a shard sub-index (not a directly servable index).
SHARD_MARKER = "/shard-"


def shard_index_name(index_name: str, shard: int) -> str:
    """Sub-index name of shard ``shard`` of ``index_name``."""
    return f"{index_name}{SHARD_MARKER}{shard:04d}"


def shard_of(document: Document, position: int, num_shards: int, partitioner: str) -> int:
    """The shard a document is routed to."""
    if partitioner == "round-robin":
        return position % num_shards
    ref = document.ref
    key = f"{ref.blob}:{ref.offset}:{ref.length}".encode("utf-8")
    # crc32 (not builtin hash()) so routing survives PYTHONHASHSEED changes.
    return zlib.crc32(key) % num_shards


def partition_documents(
    documents: Sequence[Document], num_shards: int, partitioner: str = "hash"
) -> list[list[Document]]:
    """Split ``documents`` into ``num_shards`` disjoint partitions."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if partitioner not in PARTITIONERS:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; expected one of {', '.join(PARTITIONERS)}"
        )
    partitions: list[list[Document]] = [[] for _ in range(num_shards)]
    for position, document in enumerate(documents):
        partitions[shard_of(document, position, num_shards, partitioner)].append(document)
    return partitions


def read_shard_manifest(store: ObjectStore, index_name: str) -> ShardManifest | None:
    """The shard manifest of ``index_name``, or ``None`` for single-shard layouts."""
    blob = ShardManifest.blob_name(index_name)
    if not store.exists(blob):
        return None
    return ShardManifest.from_json(store.get(blob))


def write_shard_manifest(store: ObjectStore, manifest: ShardManifest) -> str:
    """Persist ``manifest``, returning the blob name it was written to."""
    blob = ShardManifest.blob_name(manifest.index_name)
    store.put(blob, manifest.to_json().encode("utf-8"))
    return blob
