"""Superpost compaction and the header block.

Section IV-C: to avoid creating one tiny blob per bin (or one enormous blob
containing everything), the Builder serializes every superpost and
concatenates them into a single *superpost blob*; a *header blob* stores, for
every bin, the (offset, length) of its superpost within that blob, plus the
hash seeds, string table, common-word pointers, and metadata.  A Searcher
downloads only the header at initialization and can afterwards fetch any
superpost with a single range read.

The header also carries the superpost codec ``format_version`` (see
:mod:`repro.index.serialization`): v1 headers are readable forever, and the
Searcher dispatches its decoder on whatever version the header declares.
Inside the blob, superposts are placed either layer-major (``plain``) or in
co-access order (``coaccess``; see :mod:`repro.index.layout`) — placement is
invisible to readers, which only ever follow pointers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.mht import BinPointer, MultilayerHashTable
from repro.core.hashing import LayeredHasher
from repro.core.sketch import IoUSketch
from repro.core.superpost import Superpost
from repro.index.layout import (
    LAYOUT_COACCESS,
    LAYOUT_PLAIN,
    LAYOUTS,
    coaccess_order,
    plain_order,
)
from repro.index.metadata import IndexMetadata
from repro.index.serialization import (
    DEFAULT_FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    StringTable,
    encode_superpost,
    uncompressed_superpost_bytes,
)
from repro.observability.registry import get_registry

#: Blob name suffixes for the two persisted pieces of an index.
SUPERPOST_BLOB_SUFFIX = "superposts.bin"
HEADER_BLOB_SUFFIX = "header.json"

#: Magic marker of the header format (helps catch accidental blob mixups).
_HEADER_MAGIC = "airphant-header"


@dataclass
class CompactedSketch:
    """Result of compacting an in-memory IoU Sketch.

    ``superpost_blob_data`` is the byte concatenation of all serialized
    superposts; ``mht`` holds the per-bin pointers into it.
    ``format_version`` names the superpost codec the blob was written with —
    readers must hand it to ``decode_superpost``.
    """

    superpost_blob_name: str
    superpost_blob_data: bytes
    mht: MultilayerHashTable
    string_table: StringTable
    metadata: IndexMetadata | None = None
    common_word_list: list[str] = field(default_factory=list)
    format_version: int = DEFAULT_FORMAT_VERSION


def compact_sketch(
    sketch: IoUSketch,
    superpost_blob_name: str,
    metadata: IndexMetadata | None = None,
    format_version: int | None = None,
    layout: str | None = None,
    word_weights: Mapping[str, int] | None = None,
) -> CompactedSketch:
    """Serialize and concatenate all superposts of ``sketch``.

    ``format_version`` picks the superpost codec (defaults to the current
    :data:`~repro.index.serialization.DEFAULT_FORMAT_VERSION`).  ``layout``
    picks the placement order inside the blob: ``"plain"`` is layer-major,
    ``"coaccess"`` places each word's layer chain adjacently so the read
    pipeline can coalesce a query's fetches; when left ``None`` it defaults
    to co-access whenever ``word_weights`` (word → document frequency,
    supplied by the builder) are available.

    Empty bins produce zero-length pointers so the Searcher can skip them
    without issuing a request.
    """
    if format_version is None:
        format_version = DEFAULT_FORMAT_VERSION
    if format_version not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(f"unsupported superpost codec version {format_version}")
    if layout is None:
        layout = LAYOUT_COACCESS if word_weights else LAYOUT_PLAIN
    if layout not in LAYOUTS:
        raise ValueError(f"unknown layout {layout!r} (expected one of {LAYOUTS})")

    if layout == LAYOUT_COACCESS:
        placement = coaccess_order(sketch, word_weights or {})
    else:
        placement = plain_order(sketch.num_layers, sketch.bins_per_layer)

    string_table = StringTable()
    blob = bytearray()
    raw_bytes = 0
    pointer_by_node: dict[tuple[int, int], BinPointer] = {}
    for layer, bin_index in placement:
        superpost = sketch.layers[layer][bin_index]
        pointer_by_node[(layer, bin_index)] = _append_superpost(
            blob, superpost, superpost_blob_name, string_table, format_version
        )
        raw_bytes += uncompressed_superpost_bytes(superpost) if len(superpost) else 0
    pointers = [
        [
            pointer_by_node[(layer, bin_index)]
            for bin_index in range(sketch.bins_per_layer)
        ]
        for layer in range(sketch.num_layers)
    ]

    common_word_pointers: dict[str, BinPointer] = {}
    common_word_list = sorted(sketch.common_words.postings_by_word)
    for word in common_word_list:
        superpost = sketch.common_words.postings_by_word[word]
        common_word_pointers[word] = _append_superpost(
            blob, superpost, superpost_blob_name, string_table, format_version
        )
        raw_bytes += uncompressed_superpost_bytes(superpost) if len(superpost) else 0

    _record_codec_bytes(format_version, raw_bytes, len(blob))

    mht = MultilayerHashTable(
        hasher=sketch.hasher,
        pointers=pointers,
        common_word_pointers=common_word_pointers,
    )
    return CompactedSketch(
        superpost_blob_name=superpost_blob_name,
        superpost_blob_data=bytes(blob),
        mht=mht,
        string_table=string_table,
        metadata=metadata,
        common_word_list=common_word_list,
        format_version=format_version,
    )


def _append_superpost(
    blob: bytearray,
    superpost: Superpost,
    blob_name: str,
    string_table: StringTable,
    format_version: int,
) -> BinPointer:
    if len(superpost) == 0:
        return BinPointer(blob=blob_name, offset=len(blob), length=0)
    encoded = encode_superpost(superpost, string_table, format_version)
    pointer = BinPointer(blob=blob_name, offset=len(blob), length=len(encoded))
    blob += encoded
    return pointer


def _record_codec_bytes(format_version: int, raw_bytes: int, encoded_bytes: int) -> None:
    """Expose compression effectiveness on live nodes via ``/metrics``."""
    registry = get_registry()
    labels = {"format": f"v{format_version}"}
    registry.counter(
        "airphant_codec_bytes_raw_total",
        help="Superpost bytes before compression (inline names, absolute offsets).",
        label_names=("format",),
    ).inc(raw_bytes, **labels)
    registry.counter(
        "airphant_codec_bytes_encoded_total",
        help="Superpost bytes actually written, by codec format version.",
        label_names=("format",),
    ).inc(encoded_bytes, **labels)


def encode_header(compacted: CompactedSketch) -> bytes:
    """Serialize the header blob (hash seeds, pointers, string table, metadata).

    The header is JSON so it stays debuggable with standard tooling; its size
    is proportional to the bin budget B and matches the paper's observation
    that the Searcher-resident state is a few megabytes at B = 10⁵.
    """
    mht = compacted.mht
    payload = {
        "magic": _HEADER_MAGIC,
        "format_version": compacted.format_version,
        "seed": mht.hasher.seed,
        "num_layers": mht.num_layers,
        "bins_per_layer": mht.bins_per_layer,
        "superpost_blob": compacted.superpost_blob_name,
        "string_table": compacted.string_table.to_list(),
        "pointers": [
            [[pointer.offset, pointer.length] for pointer in layer]
            for layer in mht.pointers
        ],
        "common_words": {
            word: [pointer.offset, pointer.length]
            for word, pointer in mht.common_word_pointers.items()
        },
        "metadata": compacted.metadata.to_dict() if compacted.metadata else None,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_header(data: bytes) -> CompactedSketch:
    """Inverse of :func:`encode_header`.

    Accepts any supported ``format_version`` — a v2 searcher reads v1 indexes
    forever.  The returned :class:`CompactedSketch` has an empty
    ``superpost_blob_data`` (the superposts themselves stay in cloud
    storage); its ``mht`` and ``string_table`` are fully reconstructed.
    """
    payload = json.loads(data.decode("utf-8"))
    if payload.get("magic") != _HEADER_MAGIC:
        raise ValueError("not an Airphant header blob")
    format_version = payload.get("format_version")
    if format_version not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(f"unsupported header version {format_version}")

    superpost_blob = payload["superpost_blob"]
    hasher = LayeredHasher.build(
        num_layers=payload["num_layers"],
        bins_per_layer=payload["bins_per_layer"],
        seed=payload["seed"],
    )
    pointers = [
        [
            BinPointer(blob=superpost_blob, offset=offset, length=length)
            for offset, length in layer
        ]
        for layer in payload["pointers"]
    ]
    common_word_pointers = {
        word: BinPointer(blob=superpost_blob, offset=offset, length=length)
        for word, (offset, length) in payload["common_words"].items()
    }
    mht = MultilayerHashTable(
        hasher=hasher, pointers=pointers, common_word_pointers=common_word_pointers
    )
    metadata = (
        IndexMetadata.from_dict(payload["metadata"]) if payload.get("metadata") else None
    )
    return CompactedSketch(
        superpost_blob_name=superpost_blob,
        superpost_blob_data=b"",
        mht=mht,
        string_table=StringTable.from_list(payload["string_table"]),
        metadata=metadata,
        common_word_list=sorted(common_word_pointers),
        format_version=format_version,
    )
