"""Superpost compaction and the header block.

Section IV-C: to avoid creating one tiny blob per bin (or one enormous blob
containing everything), the Builder serializes every superpost and
concatenates them into a single *superpost blob*; a *header blob* stores, for
every bin, the (offset, length) of its superpost within that blob, plus the
hash seeds, string table, common-word pointers, and metadata.  A Searcher
downloads only the header at initialization and can afterwards fetch any
superpost with a single range read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.mht import BinPointer, MultilayerHashTable
from repro.core.hashing import LayeredHasher
from repro.core.sketch import IoUSketch
from repro.core.superpost import Superpost
from repro.index.metadata import IndexMetadata
from repro.index.serialization import StringTable, encode_superpost

#: Blob name suffixes for the two persisted pieces of an index.
SUPERPOST_BLOB_SUFFIX = "superposts.bin"
HEADER_BLOB_SUFFIX = "header.json"

#: Magic marker of the header format (helps catch accidental blob mixups).
_HEADER_MAGIC = "airphant-header"
_FORMAT_VERSION = 1


@dataclass
class CompactedSketch:
    """Result of compacting an in-memory IoU Sketch.

    ``superpost_blob_data`` is the byte concatenation of all serialized
    superposts; ``mht`` holds the per-bin pointers into it.
    """

    superpost_blob_name: str
    superpost_blob_data: bytes
    mht: MultilayerHashTable
    string_table: StringTable
    metadata: IndexMetadata | None = None
    common_word_list: list[str] = field(default_factory=list)


def compact_sketch(
    sketch: IoUSketch,
    superpost_blob_name: str,
    metadata: IndexMetadata | None = None,
) -> CompactedSketch:
    """Serialize and concatenate all superposts of ``sketch``.

    Empty bins produce zero-length pointers so the Searcher can skip them
    without issuing a request.
    """
    string_table = StringTable()
    blob = bytearray()
    pointers: list[list[BinPointer]] = []
    for layer in sketch.layers:
        layer_pointers: list[BinPointer] = []
        for superpost in layer:
            layer_pointers.append(
                _append_superpost(blob, superpost, superpost_blob_name, string_table)
            )
        pointers.append(layer_pointers)

    common_word_pointers: dict[str, BinPointer] = {}
    common_word_list = sorted(sketch.common_words.postings_by_word)
    for word in common_word_list:
        superpost = sketch.common_words.postings_by_word[word]
        common_word_pointers[word] = _append_superpost(
            blob, superpost, superpost_blob_name, string_table
        )

    mht = MultilayerHashTable(
        hasher=sketch.hasher,
        pointers=pointers,
        common_word_pointers=common_word_pointers,
    )
    return CompactedSketch(
        superpost_blob_name=superpost_blob_name,
        superpost_blob_data=bytes(blob),
        mht=mht,
        string_table=string_table,
        metadata=metadata,
        common_word_list=common_word_list,
    )


def _append_superpost(
    blob: bytearray,
    superpost: Superpost,
    blob_name: str,
    string_table: StringTable,
) -> BinPointer:
    if len(superpost) == 0:
        return BinPointer(blob=blob_name, offset=len(blob), length=0)
    encoded = encode_superpost(superpost, string_table)
    pointer = BinPointer(blob=blob_name, offset=len(blob), length=len(encoded))
    blob += encoded
    return pointer


def encode_header(compacted: CompactedSketch) -> bytes:
    """Serialize the header blob (hash seeds, pointers, string table, metadata).

    The header is JSON so it stays debuggable with standard tooling; its size
    is proportional to the bin budget B and matches the paper's observation
    that the Searcher-resident state is a few megabytes at B = 10⁵.
    """
    mht = compacted.mht
    payload = {
        "magic": _HEADER_MAGIC,
        "format_version": _FORMAT_VERSION,
        "seed": mht.hasher.seed,
        "num_layers": mht.num_layers,
        "bins_per_layer": mht.bins_per_layer,
        "superpost_blob": compacted.superpost_blob_name,
        "string_table": compacted.string_table.to_list(),
        "pointers": [
            [[pointer.offset, pointer.length] for pointer in layer]
            for layer in mht.pointers
        ],
        "common_words": {
            word: [pointer.offset, pointer.length]
            for word, pointer in mht.common_word_pointers.items()
        },
        "metadata": compacted.metadata.to_dict() if compacted.metadata else None,
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_header(data: bytes) -> CompactedSketch:
    """Inverse of :func:`encode_header`.

    The returned :class:`CompactedSketch` has an empty ``superpost_blob_data``
    (the superposts themselves stay in cloud storage); its ``mht`` and
    ``string_table`` are fully reconstructed.
    """
    payload = json.loads(data.decode("utf-8"))
    if payload.get("magic") != _HEADER_MAGIC:
        raise ValueError("not an Airphant header blob")
    if payload.get("format_version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported header version {payload.get('format_version')}")

    superpost_blob = payload["superpost_blob"]
    hasher = LayeredHasher.build(
        num_layers=payload["num_layers"],
        bins_per_layer=payload["bins_per_layer"],
        seed=payload["seed"],
    )
    pointers = [
        [
            BinPointer(blob=superpost_blob, offset=offset, length=length)
            for offset, length in layer
        ]
        for layer in payload["pointers"]
    ]
    common_word_pointers = {
        word: BinPointer(blob=superpost_blob, offset=offset, length=length)
        for word, (offset, length) in payload["common_words"].items()
    }
    mht = MultilayerHashTable(
        hasher=hasher, pointers=pointers, common_word_pointers=common_word_pointers
    )
    metadata = (
        IndexMetadata.from_dict(payload["metadata"]) if payload.get("metadata") else None
    )
    return CompactedSketch(
        superpost_blob_name=superpost_blob,
        superpost_blob_data=b"",
        mht=mht,
        string_table=StringTable.from_list(payload["string_table"]),
        metadata=metadata,
        common_word_list=sorted(common_word_pointers),
    )
