"""Airphant Builder.

The Builder is the offline component that turns a corpus into a persisted
IoU Sketch (Figure 3, left half):

1. parse the corpus blobs into documents with byte-range references;
2. profile the documents (single pass);
3. optimize the number of layers with Algorithm 1 (unless pinned);
4. select the common words that receive exact bins;
5. insert every word's postings into the in-memory sketch;
6. compact the superposts into a single blob and persist it;
7. persist the header blob (hash seeds, bin pointers, string table, metadata).
"""

from __future__ import annotations

import os
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence, Union

from repro.core.common_words import CommonWordTable, select_common_words
from repro.core.config import SketchConfig
from repro.core.mht import MultilayerHashTable
from repro.core.optimizer import minimize_layers
from repro.core.analysis import expected_false_positives
from repro.core.sketch import IoUSketch
from repro.index.compaction import (
    HEADER_BLOB_SUFFIX,
    SUPERPOST_BLOB_SUFFIX,
    CompactedSketch,
    compact_sketch,
    encode_header,
)
from repro.index.layout import LAYOUTS
from repro.index.metadata import IndexMetadata, ShardEntry, ShardManifest
from repro.index.serialization import DEFAULT_FORMAT_VERSION, SUPPORTED_FORMAT_VERSIONS
from repro.index.sharding import (
    PARTITIONERS,
    SHARD_MARKER,
    partition_documents,
    shard_index_name,
    write_shard_manifest,
)
from repro.index.stats import build_stats, encode_stats, stats_blob_name
from repro.parsing.corpus import CorpusParser, LineDelimitedCorpusParser
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.profiling.profiler import CorpusProfile, profile_documents
from repro.storage.base import ObjectStore


@dataclass
class BuiltIndex:
    """Handle to a freshly built (and persisted) index."""

    index_name: str
    header_blob: str
    superpost_blob: str
    metadata: IndexMetadata
    mht: MultilayerHashTable
    profile: CorpusProfile
    config: SketchConfig
    stats_blob: str = ""

    def storage_bytes(self, store: ObjectStore) -> int:
        """Total bytes the index occupies in cloud storage."""
        total = store.size(self.header_blob) + store.size(self.superpost_blob)
        if self.stats_blob:
            total += store.size(self.stats_blob)
        return total


@dataclass
class BuiltShardedIndex:
    """Handle to a freshly built sharded index (N per-shard sub-indexes)."""

    index_name: str
    manifest: ShardManifest
    shards: list[BuiltIndex] = field(default_factory=list)

    @property
    def num_shards(self) -> int:
        """Number of shards built."""
        return len(self.shards)

    @property
    def num_documents(self) -> int:
        """Documents indexed across all shards."""
        return sum(shard.metadata.num_documents for shard in self.shards)

    def storage_bytes(self, store: ObjectStore) -> int:
        """Total bytes the sharded index occupies in cloud storage."""
        manifest_bytes = store.size(ShardManifest.blob_name(self.index_name))
        return manifest_bytes + sum(shard.storage_bytes(store) for shard in self.shards)


class AirphantBuilder:
    """Creates and persists IoU Sketch indexes on an object store.

    With ``num_shards > 1`` the builder runs in *sharded mode*: documents are
    partitioned (document-hash or round-robin), one ordinary sub-index is
    built per shard on a thread pool, and a versioned
    :class:`~repro.index.metadata.ShardManifest` blob ties them together.
    Single-shard builds keep the exact legacy blob layout, so old indexes and
    old readers are unaffected.
    """

    def __init__(
        self,
        store: ObjectStore,
        config: SketchConfig | None = None,
        tokenizer: Tokenizer | None = None,
        num_shards: int = 1,
        partitioner: str = "hash",
        build_concurrency: int | None = None,
        format_version: int | None = None,
        layout: str | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; expected one of {', '.join(PARTITIONERS)}"
            )
        if build_concurrency is not None and build_concurrency < 1:
            raise ValueError("build_concurrency must be positive when set")
        if format_version is not None and format_version not in SUPPORTED_FORMAT_VERSIONS:
            raise ValueError(
                f"unsupported format_version {format_version}; expected one of "
                f"{SUPPORTED_FORMAT_VERSIONS}"
            )
        if layout is not None and layout not in LAYOUTS:
            raise ValueError(
                f"unknown layout {layout!r}; expected one of {', '.join(LAYOUTS)}"
            )
        self._store = store
        self._config = config if config is not None else SketchConfig()
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._num_shards = num_shards
        self._partitioner = partitioner
        self._build_concurrency = build_concurrency
        self._format_version = (
            format_version if format_version is not None else DEFAULT_FORMAT_VERSION
        )
        self._layout = layout
        self._metadata_extra: dict[str, Any] = {}

    @property
    def config(self) -> SketchConfig:
        """The sketch configuration used for builds."""
        return self._config

    @property
    def num_shards(self) -> int:
        """Shard count of this builder (1 = legacy single-shard layout)."""
        return self._num_shards

    @property
    def partitioner(self) -> str:
        """Document partitioner used in sharded mode."""
        return self._partitioner

    @property
    def format_version(self) -> int:
        """Superpost codec version this builder writes."""
        return self._format_version

    @property
    def layout(self) -> str | None:
        """Superpost placement order (``None`` = default for the codec)."""
        return self._layout

    # -- public build entry points -----------------------------------------------

    def build_from_blobs(
        self,
        blob_names: Sequence[str],
        corpus_parser: CorpusParser | None = None,
        index_name: str = "airphant-index",
        corpus_name: str = "corpus",
    ) -> Union[BuiltIndex, BuiltShardedIndex]:
        """Build an index over the documents contained in the named blobs."""
        parser = corpus_parser if corpus_parser is not None else LineDelimitedCorpusParser()
        documents = list(parser.parse(self._store, blob_names))
        return self.build_from_documents(documents, index_name=index_name, corpus_name=corpus_name)

    def build_from_documents(
        self,
        documents: Iterable[Document],
        index_name: str = "airphant-index",
        corpus_name: str = "corpus",
    ) -> Union[BuiltIndex, BuiltShardedIndex]:
        """Build an index over already-parsed documents.

        Returns a :class:`BuiltIndex` in single-shard mode and a
        :class:`BuiltShardedIndex` when the builder was created with
        ``num_shards > 1``.
        """
        documents = list(documents)
        if self._num_shards > 1:
            built: Union[BuiltIndex, BuiltShardedIndex] = self._build_sharded(
                documents, index_name, corpus_name
            )
        else:
            built = self._build_single(documents, index_name, corpus_name)
        self._cleanup_stale_layout(index_name, num_shards=self._num_shards)
        return built

    # -- single-shard build ---------------------------------------------------------

    def _build_single(
        self,
        documents: Sequence[Document],
        index_name: str,
        corpus_name: str,
    ) -> BuiltIndex:
        profile = profile_documents(documents, self._tokenizer)
        num_layers = self._choose_layers(profile)
        sketch, word_weights = self._populate_sketch(documents, profile, num_layers)
        metadata = self._make_metadata(corpus_name, profile, sketch, num_layers)
        compacted = self._persist(sketch, metadata, index_name, word_weights)
        # Ranking statistics ride along with every build: exact doc lengths
        # and term frequencies (mode="topk_bm25" scores from them without
        # touching document text).  Written last, so a crash mid-build leaves
        # a membership-only index rather than stats for a missing sketch.
        stats_blob = stats_blob_name(index_name)
        self._store.put(stats_blob, encode_stats(build_stats(documents, self._tokenizer)))
        return BuiltIndex(
            index_name=index_name,
            header_blob=f"{index_name}/{HEADER_BLOB_SUFFIX}",
            superpost_blob=compacted.superpost_blob_name,
            metadata=metadata,
            mht=compacted.mht,
            profile=profile,
            config=self._config,
            stats_blob=stats_blob,
        )

    # -- sharded build --------------------------------------------------------------

    def _build_sharded(
        self,
        documents: Sequence[Document],
        index_name: str,
        corpus_name: str,
    ) -> BuiltShardedIndex:
        """Partition the corpus, build one sub-index per shard, write the manifest.

        Shards are independent, so they build concurrently on a thread pool;
        each writes only its own ``shard-NNNN/`` blobs, which keeps the
        (single-writer) store contract intact per blob.
        """
        partitions = partition_documents(documents, self._num_shards, self._partitioner)

        def build_shard(shard: int) -> BuiltIndex:
            shard_builder = AirphantBuilder(
                self._store,
                config=self._config,
                tokenizer=self._tokenizer,
                format_version=self._format_version,
                layout=self._layout,
            )
            shard_builder._metadata_extra = {
                "shard_index": shard,
                "num_shards": self._num_shards,
                "partitioner": self._partitioner,
                "parent_index": index_name,
            }
            return shard_builder._build_single(
                partitions[shard],
                shard_index_name(index_name, shard),
                f"{corpus_name}#shard-{shard:04d}",
            )

        workers = self._build_concurrency
        if workers is None:
            workers = min(self._num_shards, os.cpu_count() or 1)
        if workers > 1:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="airphant-build"
            ) as pool:
                shards = list(pool.map(build_shard, range(self._num_shards)))
        else:
            shards = [build_shard(shard) for shard in range(self._num_shards)]

        manifest = ShardManifest(
            index_name=index_name,
            partitioner=self._partitioner,
            index_format_version=self._format_version,
            shards=tuple(
                ShardEntry(
                    name=shard.index_name,
                    num_documents=shard.metadata.num_documents,
                    num_terms=shard.metadata.num_terms,
                )
                for shard in shards
            ),
        )
        write_shard_manifest(self._store, manifest)
        return BuiltShardedIndex(index_name=index_name, manifest=manifest, shards=shards)

    def _cleanup_stale_layout(self, index_name: str, num_shards: int) -> None:
        """Remove blobs left over from a previous layout of ``index_name``.

        The builder owns the blob layout, so it is responsible for making a
        rebuild authoritative: a single-shard rebuild over a previously
        sharded name must drop the stale ``shards.json`` (readers check the
        manifest first) and orphaned ``shard-NNNN/`` sub-indexes; a sharded
        rebuild over a previously single-shard name must drop the old
        top-level header/superpost blobs; resharding to fewer shards must
        drop the shards beyond the new count.  Runs once per top-level build
        (never per shard sub-build, where it would only waste round trips).
        """
        if num_shards <= 1:
            keep: set[str] = set()
            self._store.delete(ShardManifest.blob_name(index_name))
        else:
            keep = {shard_index_name(index_name, shard) for shard in range(num_shards)}
            self._store.delete(f"{index_name}/{HEADER_BLOB_SUFFIX}")
            self._store.delete(f"{index_name}/{SUPERPOST_BLOB_SUFFIX}")
            self._store.delete(stats_blob_name(index_name))
        for blob in self._store.list_blobs(prefix=f"{index_name}{SHARD_MARKER}"):
            shard_name = blob.rsplit("/", 1)[0]
            if shard_name not in keep:
                self._store.delete(blob)

    # -- build steps ----------------------------------------------------------------

    def _choose_layers(self, profile: CorpusProfile) -> int:
        """Pin the configured layer count or run Algorithm 1."""
        if self._config.num_layers is not None:
            return self._config.num_layers
        if profile.num_documents == 0 or profile.num_terms == 0:
            return 1
        result = minimize_layers(
            num_bins=self._config.sketch_bins,
            target_false_positives=self._config.target_false_positives,
            profile=profile,
            distribution=None,
            max_layers=self._config.max_layers,
        )
        return result.num_layers

    def _populate_sketch(
        self,
        documents: Sequence[Document],
        profile: CorpusProfile,
        num_layers: int,
    ) -> tuple[IoUSketch, dict[str, int]]:
        """Build the in-memory sketch: common-word table plus hashed layers.

        Also returns the per-word document frequencies, which the layout pass
        uses as co-access weights (heavier words get contiguous chains).
        """
        common_table = CommonWordTable()
        for word in select_common_words(profile, self._config.common_word_bins):
            common_table.register(word)

        sketch = IoUSketch.build(
            num_layers=num_layers,
            total_bins=max(self._config.sketch_bins, num_layers),
            seed=self._config.seed,
            common_words=common_table,
        )

        postings_by_word: dict[str, set[Posting]] = defaultdict(set)
        for document in documents:
            for word in self._tokenizer.distinct_terms(document.text):
                postings_by_word[word].add(document.ref)
        word_weights: dict[str, int] = {}
        for word, postings in postings_by_word.items():
            sketch.insert(word, postings)
            word_weights[word] = len(postings)
        return sketch, word_weights

    def _make_metadata(
        self,
        corpus_name: str,
        profile: CorpusProfile,
        sketch: IoUSketch,
        num_layers: int,
    ) -> IndexMetadata:
        if profile.num_documents > 0 and profile.num_terms > 0:
            expected = expected_false_positives(
                num_layers, sketch.total_bins, profile, distribution=None
            )
        else:
            expected = 0.0
        return IndexMetadata(
            corpus_name=corpus_name,
            extra=dict(self._metadata_extra),
            num_documents=profile.num_documents,
            num_terms=profile.num_terms,
            num_words=profile.num_words,
            num_layers=num_layers,
            num_bins=self._config.num_bins,
            bins_per_layer=sketch.bins_per_layer,
            num_common_words=len(sketch.common_words),
            seed=self._config.seed,
            target_false_positives=self._config.target_false_positives,
            expected_false_positives=expected,
            format_version=self._format_version,
        )

    def _persist(
        self,
        sketch: IoUSketch,
        metadata: IndexMetadata,
        index_name: str,
        word_weights: dict[str, int] | None = None,
    ) -> CompactedSketch:
        superpost_blob = f"{index_name}/{SUPERPOST_BLOB_SUFFIX}"
        header_blob = f"{index_name}/{HEADER_BLOB_SUFFIX}"
        compacted = compact_sketch(
            sketch,
            superpost_blob,
            metadata=metadata,
            format_version=self._format_version,
            layout=self._layout,
            word_weights=word_weights,
        )
        self._store.put(superpost_blob, compacted.superpost_blob_data)
        self._store.put(header_blob, encode_header(compacted))
        return compacted
