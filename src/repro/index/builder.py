"""Airphant Builder.

The Builder is the offline component that turns a corpus into a persisted
IoU Sketch (Figure 3, left half):

1. parse the corpus blobs into documents with byte-range references;
2. profile the documents (single pass);
3. optimize the number of layers with Algorithm 1 (unless pinned);
4. select the common words that receive exact bins;
5. insert every word's postings into the in-memory sketch;
6. compact the superposts into a single blob and persist it;
7. persist the header blob (hash seeds, bin pointers, string table, metadata).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.common_words import CommonWordTable, select_common_words
from repro.core.config import SketchConfig
from repro.core.mht import MultilayerHashTable
from repro.core.optimizer import minimize_layers
from repro.core.analysis import expected_false_positives
from repro.core.sketch import IoUSketch
from repro.index.compaction import (
    HEADER_BLOB_SUFFIX,
    SUPERPOST_BLOB_SUFFIX,
    CompactedSketch,
    compact_sketch,
    encode_header,
)
from repro.index.metadata import IndexMetadata
from repro.parsing.corpus import CorpusParser, LineDelimitedCorpusParser
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.profiling.profiler import CorpusProfile, profile_documents
from repro.storage.base import ObjectStore


@dataclass
class BuiltIndex:
    """Handle to a freshly built (and persisted) index."""

    index_name: str
    header_blob: str
    superpost_blob: str
    metadata: IndexMetadata
    mht: MultilayerHashTable
    profile: CorpusProfile
    config: SketchConfig

    def storage_bytes(self, store: ObjectStore) -> int:
        """Total bytes the index occupies in cloud storage."""
        return store.size(self.header_blob) + store.size(self.superpost_blob)


class AirphantBuilder:
    """Creates and persists IoU Sketch indexes on an object store."""

    def __init__(
        self,
        store: ObjectStore,
        config: SketchConfig | None = None,
        tokenizer: Tokenizer | None = None,
    ) -> None:
        self._store = store
        self._config = config if config is not None else SketchConfig()
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()

    @property
    def config(self) -> SketchConfig:
        """The sketch configuration used for builds."""
        return self._config

    # -- public build entry points -----------------------------------------------

    def build_from_blobs(
        self,
        blob_names: Sequence[str],
        corpus_parser: CorpusParser | None = None,
        index_name: str = "airphant-index",
        corpus_name: str = "corpus",
    ) -> BuiltIndex:
        """Build an index over the documents contained in the named blobs."""
        parser = corpus_parser if corpus_parser is not None else LineDelimitedCorpusParser()
        documents = list(parser.parse(self._store, blob_names))
        return self.build_from_documents(documents, index_name=index_name, corpus_name=corpus_name)

    def build_from_documents(
        self,
        documents: Iterable[Document],
        index_name: str = "airphant-index",
        corpus_name: str = "corpus",
    ) -> BuiltIndex:
        """Build an index over already-parsed documents."""
        documents = list(documents)
        profile = profile_documents(documents, self._tokenizer)
        num_layers = self._choose_layers(profile)
        sketch = self._populate_sketch(documents, profile, num_layers)
        metadata = self._make_metadata(corpus_name, profile, sketch, num_layers)
        compacted = self._persist(sketch, metadata, index_name)
        return BuiltIndex(
            index_name=index_name,
            header_blob=f"{index_name}/{HEADER_BLOB_SUFFIX}",
            superpost_blob=compacted.superpost_blob_name,
            metadata=metadata,
            mht=compacted.mht,
            profile=profile,
            config=self._config,
        )

    # -- build steps ----------------------------------------------------------------

    def _choose_layers(self, profile: CorpusProfile) -> int:
        """Pin the configured layer count or run Algorithm 1."""
        if self._config.num_layers is not None:
            return self._config.num_layers
        if profile.num_documents == 0 or profile.num_terms == 0:
            return 1
        result = minimize_layers(
            num_bins=self._config.sketch_bins,
            target_false_positives=self._config.target_false_positives,
            profile=profile,
            distribution=None,
            max_layers=self._config.max_layers,
        )
        return result.num_layers

    def _populate_sketch(
        self,
        documents: Sequence[Document],
        profile: CorpusProfile,
        num_layers: int,
    ) -> IoUSketch:
        """Build the in-memory sketch: common-word table plus hashed layers."""
        common_table = CommonWordTable()
        for word in select_common_words(profile, self._config.common_word_bins):
            common_table.register(word)

        sketch = IoUSketch.build(
            num_layers=num_layers,
            total_bins=max(self._config.sketch_bins, num_layers),
            seed=self._config.seed,
            common_words=common_table,
        )

        postings_by_word: dict[str, set[Posting]] = defaultdict(set)
        for document in documents:
            for word in self._tokenizer.distinct_terms(document.text):
                postings_by_word[word].add(document.ref)
        for word, postings in postings_by_word.items():
            sketch.insert(word, postings)
        return sketch

    def _make_metadata(
        self,
        corpus_name: str,
        profile: CorpusProfile,
        sketch: IoUSketch,
        num_layers: int,
    ) -> IndexMetadata:
        if profile.num_documents > 0 and profile.num_terms > 0:
            expected = expected_false_positives(
                num_layers, sketch.total_bins, profile, distribution=None
            )
        else:
            expected = 0.0
        return IndexMetadata(
            corpus_name=corpus_name,
            num_documents=profile.num_documents,
            num_terms=profile.num_terms,
            num_words=profile.num_words,
            num_layers=num_layers,
            num_bins=self._config.num_bins,
            bins_per_layer=sketch.bins_per_layer,
            num_common_words=len(sketch.common_words),
            seed=self._config.seed,
            target_false_positives=self._config.target_false_positives,
            expected_false_positives=expected,
        )

    def _persist(
        self, sketch: IoUSketch, metadata: IndexMetadata, index_name: str
    ) -> CompactedSketch:
        superpost_blob = f"{index_name}/{SUPERPOST_BLOB_SUFFIX}"
        header_blob = f"{index_name}/{HEADER_BLOB_SUFFIX}"
        compacted = compact_sketch(sketch, superpost_blob, metadata=metadata)
        self._store.put(superpost_blob, compacted.superpost_blob_data)
        self._store.put(header_blob, encode_header(compacted))
        return compacted
