"""Live observability: one metrics registry every layer reports into.

The reproduction's layers each kept private accounting — the simulated
store's :class:`~repro.storage.metrics.StorageMetrics`, the read pipeline's
:class:`~repro.storage.pipeline.PipelineStats`, the resilience wrapper's
:class:`~repro.storage.resilient.ResilienceStats` — which made the paper's
figures reproducible but left a *served* index blind.  This package unifies
them: every stats object mirrors its updates into a
:class:`MetricsRegistry` (process-global by default), the real backends
record request latencies and status codes, and the service facade records
per-query-mode counts and end-to-end latency.  Exported three ways:

* ``GET /metrics`` — Prometheus text exposition on the HTTP query node;
* ``GET /healthz`` — a compact ``metrics`` summary block;
* ``airphant stats`` — CLI snapshot (local probe or scrape of a live node).

See ``docs/OBSERVABILITY.md`` for the full metric inventory.
"""

from repro.observability.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.observability.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    get_registry,
)
from repro.observability.stats import MirroredStats
from repro.observability.tracing import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    Span,
    Tracer,
    TraceStore,
    attach,
    current_span,
    span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "MirroredStats",
    "NULL_REGISTRY",
    "PARENT_SPAN_HEADER",
    "PROMETHEUS_CONTENT_TYPE",
    "Span",
    "TRACE_ID_HEADER",
    "TraceStore",
    "Tracer",
    "attach",
    "current_span",
    "get_registry",
    "span",
]
