"""Shared machinery for registry-mirrored per-component stats objects.

``PipelineStats``, ``ResilienceStats``, and the simulated store's
``StorageMetrics`` all follow one pattern: a plain-attribute stats object
whose every update must be (a) atomic — pool threads, hedge workers, and
HTTP server threads report concurrently — and (b) mirrored into a
:class:`~repro.observability.registry.MetricsRegistry` so live serving and
the paper figures share one accounting path.  :class:`MirroredStats` is
that pattern, written once: subclasses declare a ``_COUNTER_TABLE`` mapping
field names to ``(metric name, help)`` and get :meth:`bind`, :meth:`add`,
and :meth:`snapshot` for free.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.observability.registry import Counter, MetricsRegistry


class MirroredStats:
    """Lock-protected counters that mirror increments into a registry.

    Designed to be mixed into a ``@dataclass``: the dataclass-generated
    ``__init__`` calls :meth:`__post_init__`, which sets up the lock.
    Subclasses set ``_COUNTER_TABLE`` (field name → ``(metric_name, help)``)
    and expose a ``to_dict()``; everything else is inherited.
    """

    #: Field name -> (registry counter name, help) mirrored by :meth:`add`.
    _COUNTER_TABLE: dict[str, tuple[str, str]] = {}

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] | None = None

    def bind(self, metrics: MetricsRegistry) -> "MirroredStats":
        """Mirror future :meth:`add` increments into ``metrics``; returns self."""
        self._counters = {
            field_name: metrics.counter(name, help)
            for field_name, (name, help) in self._COUNTER_TABLE.items()
        }
        return self

    def add(self, **deltas: int) -> None:
        """Atomically add ``field=delta`` increments (and mirror them)."""
        with self._lock:
            for field_name, delta in deltas.items():
                setattr(self, field_name, getattr(self, field_name) + delta)
        counters = self._counters
        if counters is not None:
            for field_name, delta in deltas.items():
                if delta:
                    counters[field_name].inc(delta)

    def snapshot(self) -> dict[str, Any]:
        """Consistent point-in-time copy (same shape as ``to_dict()``)."""
        with self._lock:
            return self.to_dict()

    def to_dict(self) -> dict[str, Any]:  # pragma: no cover - subclasses override
        raise NotImplementedError
