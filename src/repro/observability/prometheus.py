"""Prometheus text exposition format (version 0.0.4) rendering.

Kept separate from the registry so the wire format is one small,
independently testable module: ``# HELP`` / ``# TYPE`` headers, label
escaping, canonical float formatting, and the cumulative ``_bucket`` /
``_sum`` / ``_count`` triple of histograms.  The format reference is
https://prometheus.io/docs/instrumenting/exposition_formats/ — everything a
scraper needs, nothing more.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (registry imports us)
    from repro.observability.registry import Metric

#: MIME type a ``/metrics`` endpoint must answer with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` docstring (backslash and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def escape_label_value(value: str) -> str:
    """Escape one label value (backslash, double quote, newline)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_value(value: float) -> str:
    """Canonical sample-value formatting: integral floats lose the ``.0``."""
    if value != value:  # NaN
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def format_labels(label_names: tuple[str, ...], label_values: tuple[str, ...], extra: str = "") -> str:
    """Render the ``{name="value",...}`` block (empty string when no labels)."""
    parts = [
        f'{name}="{escape_label_value(value)}"'
        for name, value in zip(label_names, label_values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_metric(metric: "Metric") -> str:
    """Render one metric family (header plus every series) as exposition text.

    Families with no recorded series render to an empty string — Prometheus
    treats absent series as "not yet observed", and emitting bare headers
    would only pad the payload.
    """
    series = metric.series()
    if not series:
        return ""
    lines = []
    if metric.help:
        lines.append(f"# HELP {metric.name} {escape_help(metric.help)}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    if metric.kind in ("counter", "gauge"):
        for key, value in sorted(series.items()):
            labels = format_labels(metric.label_names, key)
            lines.append(f"{metric.name}{labels} {format_value(value)}")
    elif metric.kind == "histogram":
        bounds = [format_value(bound) for bound in metric.buckets] + ["+Inf"]
        for key, state in sorted(series.items()):
            for bound, cumulative in zip(bounds, state["cumulative_buckets"]):
                labels = format_labels(metric.label_names, key, extra=f'le="{bound}"')
                lines.append(f"{metric.name}_bucket{labels} {format_value(cumulative)}")
            labels = format_labels(metric.label_names, key)
            lines.append(f"{metric.name}_sum{labels} {format_value(state['sum'])}")
            lines.append(f"{metric.name}_count{labels} {format_value(state['count'])}")
    else:  # pragma: no cover - only counter/histogram kinds exist today
        raise ValueError(f"cannot render metric kind {metric.kind!r}")
    return "\n".join(lines) + "\n"
