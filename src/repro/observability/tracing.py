"""Request-scoped distributed tracing with zero dependencies.

The metrics registry answers "how is the fleet doing"; this module answers
"why was *this* query slow".  Airphant's design thesis is that query latency
is dominated by cloud-storage round-trip waves (the paper's two-wave read
path, §IV), so the unit of observability here is the **span tree of one
request**: every pipeline fetch wave, store attempt, hedge, shard fan-out,
and tombstone filter of a single query, nested and timed.

Three pieces:

``Span``
    One timed node: name, attributes, start timestamp, duration, children.
    Spans form a tree; the tree is JSON-serializable (``to_dict`` /
    ``from_dict``) so it can cross process boundaries — a routed query
    grafts each peer's serialized sub-tree under the router's per-node
    span, producing **one** tree spanning the whole cluster.

``Tracer``
    Starts root spans (one per request), decides which finished traces are
    *kept*: always when forced (``explain`` queries, propagated sub-requests),
    on a deterministic counter-based sample otherwise, and always when the
    request exceeds the slow-query threshold — slow queries additionally
    emit one JSON line to the slow-query log, correlated by trace id.

``TraceStore``
    A bounded ring buffer of kept traces, served by ``GET /traces`` and
    ``GET /traces/{id}``.

Ambient propagation uses a :mod:`contextvars` variable: instrumented code
calls :func:`span` and gets a real child span when a trace is active in the
current context, or a shared no-op object (a single contextvar read, no
allocation) when not.  Worker threads do not inherit contextvars from their
submitter, so pool-based fan-out (the parallel fetcher, the router's
scatter pool, hedge pools) captures :func:`current_span` at submit time and
re-attaches it inside the worker with :func:`attach`.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "PARENT_SPAN_HEADER",
    "TRACE_ID_HEADER",
    "Span",
    "TraceStore",
    "Tracer",
    "attach",
    "current_span",
    "new_id",
    "render_trace",
    "span",
    "summarize_trace",
]

#: HTTP headers carrying trace context to peer nodes of a routed query.
TRACE_ID_HEADER = "X-Airphant-Trace-Id"
PARENT_SPAN_HEADER = "X-Airphant-Parent-Span"

_active_span: ContextVar["Span | None"] = ContextVar(
    "airphant_active_span", default=None
)


def new_id(nbytes: int = 8) -> str:
    """A fresh random hex id (trace ids and span ids)."""
    return os.urandom(nbytes).hex()


class Span:
    """One timed node of a request's trace tree.

    Thread-compatible by construction: attribute writes replace dict keys
    and child registration appends to a list — both atomic under the GIL —
    while read-modify-write accumulation (:meth:`inc`) takes the span's own
    lock.  Pool threads therefore attach children to a shared parent
    without coordination beyond :func:`attach`.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "started_at",
        "duration_ms",
        "attrs",
        "children",
        "_t0",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        trace_id: str | None = None,
        parent_id: str | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else new_id()
        self.span_id = new_id(4)
        self.parent_id = parent_id
        self.started_at = time.time()
        self.duration_ms: float | None = None
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()

    # -- building ----------------------------------------------------------------

    def set(self, **attrs: Any) -> None:
        """Assign attributes (last write wins)."""
        self.attrs.update(attrs)

    def inc(self, **attrs: float) -> None:
        """Accumulate numeric attributes (thread-safe read-modify-write)."""
        with self._lock:
            for key, value in attrs.items():
                self.attrs[key] = self.attrs.get(key, 0) + value

    def child(self, name: str, **attrs: Any) -> "Span":
        """Create and register a child span."""
        node = Span(name, trace_id=self.trace_id, parent_id=self.span_id, attrs=attrs)
        self.children.append(node)
        return node

    def graft(self, tree: "Span") -> None:
        """Attach an externally built sub-tree (a peer's trace) as a child."""
        tree.parent_id = self.span_id
        self.children.append(tree)

    def finish(self) -> "Span":
        """Fix the span's duration (idempotent: first call wins)."""
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        return self

    # -- reading -----------------------------------------------------------------

    def span_count(self) -> int:
        """Number of spans in this sub-tree, including this one."""
        return 1 + sum(child.span_count() for child in self.children)

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this sub-tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "started_at": self.started_at,
            "duration_ms": round(self.duration_ms, 3)
            if self.duration_ms is not None
            else None,
        }
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        node = cls.__new__(cls)
        node.name = str(data.get("name", ""))
        node.trace_id = str(data.get("trace_id", ""))
        node.span_id = str(data.get("span_id", ""))
        node.parent_id = data.get("parent_id")
        node.started_at = float(data.get("started_at", 0.0))
        duration = data.get("duration_ms")
        node.duration_ms = float(duration) if duration is not None else None
        attrs = data.get("attrs")
        node.attrs = dict(attrs) if isinstance(attrs, Mapping) else {}
        children = data.get("children")
        node.children = [
            cls.from_dict(child)
            for child in (children if isinstance(children, list) else [])
            if isinstance(child, Mapping)
        ]
        node._t0 = 0.0
        node._lock = threading.Lock()
        return node


class _NoopSpan:
    """Stand-in yielded by :func:`span` when no trace is active.

    Accepts the full ``Span`` surface as no-ops so instrumented code never
    branches on "is tracing on".
    """

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def inc(self, **attrs: float) -> None:
        pass

    def child(self, name: str, **attrs: Any) -> "_NoopSpan":
        return self

    def graft(self, tree: Span) -> None:
        pass

    def finish(self) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


def current_span() -> Span | None:
    """The ambient span of the calling context (``None`` outside a trace)."""
    return _active_span.get()


@contextmanager
def attach(parent: Span | None) -> Iterator[None]:
    """Re-attach a captured span as ambient inside a worker thread.

    Thread pools do not inherit contextvars from the submitting thread;
    callers capture :func:`current_span` before submitting and wrap the
    worker body in ``attach(parent)`` so nested :func:`span` calls land
    under the right request.
    """
    token = _active_span.set(parent)
    try:
        yield
    finally:
        _active_span.reset(token)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | _NoopSpan]:
    """Open a child of the ambient span (no-op when no trace is active)."""
    parent = _active_span.get()
    if parent is None:
        yield NOOP_SPAN
        return
    node = parent.child(name, **attrs)
    token = _active_span.set(node)
    try:
        yield node
    finally:
        _active_span.reset(token)
        node.finish()


class TraceStore:
    """Bounded ring buffer of kept traces, newest first on read."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._by_id: dict[str, Span] = {}
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def add(self, root: Span) -> None:
        with self._lock:
            if len(self._ring) == self._capacity:
                evicted = self._ring[0]
                self._by_id.pop(evicted.trace_id, None)
            self._ring.append(root)
            self._by_id[root.trace_id] = root

    def get(self, trace_id: str) -> Span | None:
        with self._lock:
            return self._by_id.get(trace_id)

    def list(self, limit: int = 50) -> list[dict[str, Any]]:
        """Newest-first summaries (id, root name, duration, span count)."""
        with self._lock:
            roots = list(self._ring)
        summaries = []
        for root in reversed(roots[-limit:] if limit else roots):
            summaries.append(
                {
                    "trace_id": root.trace_id,
                    "name": root.name,
                    "started_at": root.started_at,
                    "duration_ms": round(root.duration_ms, 3)
                    if root.duration_ms is not None
                    else None,
                    "spans": root.span_count(),
                    "attrs": dict(root.attrs),
                }
            )
        return summaries

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_id.clear()


class TraceHandle:
    """A begun root span plus the bookkeeping to finish and keep it."""

    __slots__ = ("root", "_tracer", "_token", "_force", "_sampled", "_finished")

    def __init__(
        self, tracer: "Tracer", root: Span, force: bool, sampled: bool
    ) -> None:
        self.root = root
        self._tracer = tracer
        self._token = _active_span.set(root)
        self._force = force
        self._sampled = sampled
        self._finished = False

    @property
    def trace_id(self) -> str:
        return self.root.trace_id

    def finish(self) -> Span:
        """Detach from the context, fix the duration, keep/log as decided."""
        if self._finished:
            return self.root
        self._finished = True
        _active_span.reset(self._token)
        self.root.finish()
        self._tracer._finish(self.root, force=self._force, sampled=self._sampled)
        return self.root


def _default_slow_log(line: str) -> None:
    sys.stderr.write(line + "\n")


class Tracer:
    """Starts request-scoped traces and decides which ones to keep.

    Parameters
    ----------
    enabled:
        When ``False``, :meth:`begin` returns ``None`` and no spans are
        built anywhere — the per-call cost collapses to one contextvar read
        per instrumentation point.
    sample_rate:
        Fraction of requests whose traces are kept in the ring buffer even
        when fast and unforced.  Sampling is deterministic (every
        ``round(1/rate)``-th request), so identically seeded benchmark
        replays stay comparable.
    capacity:
        Ring-buffer size of the backing :class:`TraceStore`.
    slow_query_ms:
        Requests slower than this are *always* kept and additionally emit
        one JSON line to ``slow_log``.  ``0`` disables slow-query capture.
    slow_log:
        Sink for slow-query lines (defaults to stderr).
    """

    def __init__(
        self,
        enabled: bool = True,
        sample_rate: float = 0.0,
        capacity: int = 256,
        slow_query_ms: float = 0.0,
        slow_log: Callable[[str], None] | None = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        if slow_query_ms < 0:
            raise ValueError("slow_query_ms must be non-negative")
        self.enabled = enabled
        self.sample_rate = sample_rate
        self.slow_query_ms = slow_query_ms
        self.store = TraceStore(capacity)
        self._slow_log = slow_log if slow_log is not None else _default_slow_log
        self._seen = 0
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def begin(
        self,
        name: str,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
        force: bool = False,
        **attrs: Any,
    ) -> TraceHandle | None:
        """Open a root span and make it ambient; ``None`` when disabled.

        ``trace_id``/``parent_span_id`` come from propagation headers on
        sub-requests, so a peer's root span joins the router's tree.
        ``force`` marks the finished trace as kept regardless of sampling
        (explain queries, propagated sub-requests whose tree the caller
        grafts).
        """
        if not self.enabled:
            return None
        root = Span(name, trace_id=trace_id, parent_id=parent_span_id, attrs=attrs)
        return TraceHandle(self, root, force=force, sampled=self._sample())

    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        period = max(1, round(1.0 / self.sample_rate))
        with self._lock:
            self._seen += 1
            return self._seen % period == 1

    def _finish(self, root: Span, force: bool, sampled: bool) -> None:
        duration = root.duration_ms or 0.0
        slow = self.slow_query_ms > 0 and duration >= self.slow_query_ms
        if slow:
            root.set(slow=True)
            self._slow_log(
                json.dumps(
                    {
                        "event": "slow_query",
                        "trace_id": root.trace_id,
                        "name": root.name,
                        "duration_ms": round(duration, 3),
                        "threshold_ms": self.slow_query_ms,
                        "attrs": dict(root.attrs),
                    },
                    sort_keys=True,
                )
            )
        if force or sampled or slow:
            self.store.add(root)


# -- explain payload -----------------------------------------------------------


def summarize_trace(tree: Mapping[str, Any]) -> dict[str, Any]:
    """Per-wave summary of a serialized span tree.

    Walks the tree collecting every ``pipeline.fetch`` span (one per read
    wave) plus the resilience attempt spans, and aggregates the numbers an
    operator reads first: requests, bytes, cache hits, hedges, retries.
    """
    waves: list[dict[str, Any]] = []
    totals = {
        "requests": 0,
        "physical_requests": 0,
        "bytes_requested": 0,
        "bytes_fetched": 0,
        "cache_hits": 0,
        "refunded_bytes": 0,
        "attempts": 0,
        "retries": 0,
        "hedges": 0,
        "timeouts": 0,
    }
    spans = 0

    def visit(node: Mapping[str, Any]) -> None:
        nonlocal spans
        spans += 1
        attrs = node.get("attrs") or {}
        name = node.get("name")
        if name == "pipeline.fetch":
            wave = {
                "duration_ms": node.get("duration_ms"),
                "requests": attrs.get("requests", 0),
                "physical_requests": attrs.get("physical_requests", 0),
                "bytes_requested": attrs.get("bytes_requested", 0),
                "bytes_fetched": attrs.get("bytes_fetched", 0),
                "cache_hits": attrs.get("cache_hits", 0),
                "cache_misses": attrs.get("cache_misses", 0),
            }
            waves.append(wave)
            for key in (
                "requests",
                "physical_requests",
                "bytes_requested",
                "bytes_fetched",
                "cache_hits",
            ):
                totals[key] += wave[key] or 0
        elif name == "store.attempt":
            totals["attempts"] += 1
            if attrs.get("retry"):
                totals["retries"] += 1
            if attrs.get("hedged"):
                totals["hedges"] += 1
            if attrs.get("timeout"):
                totals["timeouts"] += 1
        totals["refunded_bytes"] += attrs.get("refunded_bytes", 0) or 0
        for child in node.get("children") or []:
            visit(child)

    visit(tree)
    totals["spans"] = spans
    totals["waves"] = len(waves)
    return {"waves": waves, "totals": totals}


def explain_payload(root: Span) -> dict[str, Any]:
    """The ``trace`` block attached to an explain/propagated response."""
    tree = root.to_dict()
    return {
        "trace_id": root.trace_id,
        "duration_ms": tree.get("duration_ms"),
        "spans": tree,
        "summary": summarize_trace(tree),
    }


def render_trace(tree: Mapping[str, Any], indent: int = 0) -> str:
    """Human-readable tree rendering (used by ``airphant search --explain``)."""
    lines: list[str] = []

    def visit(node: Mapping[str, Any], depth: int) -> None:
        duration = node.get("duration_ms")
        timing = f"{duration:.2f} ms" if isinstance(duration, (int, float)) else "?"
        attrs = node.get("attrs") or {}
        detail = ""
        if attrs:
            parts = []
            for key in sorted(attrs):
                value = attrs[key]
                if isinstance(value, float):
                    value = round(value, 2)
                parts.append(f"{key}={value}")
            detail = "  [" + " ".join(parts) + "]"
        prefix = "  " * depth + ("└─ " if depth else "")
        lines.append(f"{prefix}{node.get('name')}  {timing}{detail}")
        for child in node.get("children") or []:
            visit(child, depth + 1)

    visit(tree, indent)
    return "\n".join(lines)
