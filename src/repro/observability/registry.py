"""Thread-safe metrics registry: monotonic counters + bounded histograms.

The paper's evaluation is built on per-request accounting — wait vs. download
time and round-trip counts (Figures 8 and 11) — but a *served* reproduction
needs the same numbers live: how many range reads the pipeline coalesced
away, how often the resilience layer retried or hedged, what the real
backends' request latencies look like, and how long end-to-end queries take.
:class:`MetricsRegistry` is the one accounting path all of those report
into.  Design constraints:

* **Near-zero overhead** — recording is an attribute lookup, one small lock,
  and a dict update; a disabled registry short-circuits to a single branch.
* **Bounded memory** — histograms keep fixed bucket counts (plus sum / count
  / min / max) per label set, never raw samples, so a registry's footprint
  is independent of traffic volume.
* **Thread safety** — every layer records from pool threads (the parallel
  fetcher, the hedge pool, HTTP server threads); each metric guards its
  series map with its own lock.

The registry renders itself three ways: :meth:`MetricsRegistry.snapshot`
(JSON-able, used by ``/healthz`` and ``airphant stats``),
:meth:`MetricsRegistry.to_prometheus` (the ``/metrics`` endpoint), and
plain attribute reads on the metric objects (tests, benchmarks).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable, Mapping

from repro.observability.prometheus import render_metric

#: Default latency buckets in seconds, spanning sub-millisecond in-memory
#: reads to multi-second cold cloud requests (Prometheus's classic ladder).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _validate_names(name: str, label_names: tuple[str, ...]) -> None:
    if not _METRIC_NAME.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    for label in label_names:
        if not _LABEL_NAME.match(label):
            raise ValueError(f"invalid label name {label!r} on metric {name!r}")


class Metric:
    """Base of one named metric family (all series sharing a label schema).

    Parameters
    ----------
    name:
        Prometheus-style metric name (``[a-zA-Z_:][a-zA-Z0-9_:]*``).
    help:
        One-line human description, emitted as the ``# HELP`` line.
    label_names:
        Fixed label schema; every record call must supply exactly these.
    registry:
        Owning registry; recording is skipped while it is disabled.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        _validate_names(name, tuple(label_names))
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._registry = registry
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether record calls currently take effect."""
        return self._registry is None or self._registry.enabled

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def clear(self) -> None:
        """Drop every recorded series (registration survives)."""
        raise NotImplementedError

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable view of every series."""
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing counter family."""

    kind = "counter"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be non-negative) to the labeled series."""
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 when never incremented)."""
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label combination."""
        with self._lock:
            return sum(self._values.values())

    def series(self) -> dict[tuple[str, ...], float]:
        """Copy of every ``label values -> value`` entry."""
        with self._lock:
            return dict(self._values)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(self._values.items())
            ]
            total = sum(self._values.values())
        return {"type": self.kind, "help": self.help, "total": total, "values": values}


class Gauge(Metric):
    """A point-in-time value family: goes up, goes down, or is computed live.

    Two usage styles:

    * **stored** — components call :meth:`set` / :meth:`inc` / :meth:`dec`
      whenever the underlying quantity changes (e.g. memtable document
      counts, labeled per index);
    * **computed** — an unlabeled gauge is bound to a callable with
      :meth:`set_function`; the callable is evaluated at read time
      (snapshot, summary, ``/metrics``), so the exported value is always
      current without any update hooks (e.g. ``airphant_open_indexes``).
    """

    kind = "gauge"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._values: dict[tuple[str, ...], float] = {}
        self._function: Any = None

    def set_function(self, function: Any) -> None:
        """Bind a zero-argument callable evaluated at every read.

        Only unlabeled gauges support computed mode (a callable cannot
        enumerate label sets); re-binding replaces the previous callable,
        which is what a service restart over the shared process registry
        wants — the newest instance answers.
        """
        if self.label_names:
            raise ValueError(
                f"gauge {self.name!r} has labels {self.label_names}; "
                "set_function() only works on unlabeled gauges"
            )
        if function is not None and not callable(function):
            raise TypeError("set_function expects a callable (or None to unbind)")
        with self._lock:
            self._function = function

    def set(self, value: float, **labels: str) -> None:
        """Set the labeled series to ``value``."""
        if not self.enabled:
            return
        key = self._key(labels)
        with self._lock:
            if self._function is not None:
                raise ValueError(
                    f"gauge {self.name!r} is bound to a function; set() is invalid"
                )
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        if not self.enabled:
            return
        key = self._key(labels)
        with self._lock:
            if self._function is not None:
                raise ValueError(
                    f"gauge {self.name!r} is bound to a function; inc() is invalid"
                )
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labeled series."""
        self.inc(-amount, **labels)

    def remove(self, **labels: str) -> None:
        """Drop one labeled series (e.g. an index that no longer exists)."""
        key = self._key(labels)
        with self._lock:
            self._values.pop(key, None)

    def value(self, **labels: str) -> float:
        """Current value of the labeled series (0 when never set)."""
        key = self._key(labels)
        with self._lock:
            if self._function is not None:
                return float(self._function()) if self.enabled else 0.0
            return self._values.get(key, 0.0)

    @property
    def total(self) -> float:
        """Sum across every label combination (the computed value if bound)."""
        with self._lock:
            if self._function is not None:
                return float(self._function()) if self.enabled else 0.0
            return sum(self._values.values())

    def series(self) -> dict[tuple[str, ...], float]:
        """Copy of every ``label values -> value`` entry (evaluates callables).

        A function-bound gauge on a *disabled* registry reports no series at
        all: the callable is not evaluated, matching how stored metrics
        record nothing while disabled (and keeping the shared
        ``NULL_REGISTRY`` exposition empty).
        """
        with self._lock:
            if self._function is not None:
                return {(): float(self._function())} if self.enabled else {}
            return dict(self._values)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def snapshot(self) -> dict[str, Any]:
        series = self.series()
        return {
            "type": self.kind,
            "help": self.help,
            "total": sum(series.values()),
            "values": [
                {"labels": dict(zip(self.label_names, key)), "value": value}
                for key, value in sorted(series.items())
            ],
        }


class _HistogramSeries:
    """Bucket counts + running aggregates of one labeled histogram series."""

    __slots__ = ("bucket_counts", "count", "sum", "min", "max")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf


class Histogram(Metric):
    """A bounded-memory histogram family with quantile estimates.

    Observations are binned into fixed ``buckets`` (upper bounds, in
    ascending order; an implicit ``+Inf`` bucket catches the rest), so
    memory stays constant no matter how many values are observed.
    Quantiles are estimated by linear interpolation inside the bucket the
    target rank falls into — the same estimate ``histogram_quantile`` makes
    on the Prometheus side — with the recorded min/max tightening the first
    and last buckets.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
        registry: "MetricsRegistry | None" = None,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, label_names, registry)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError("buckets must be non-empty and strictly increasing")
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        if not self.enabled:
            return
        value = float(value)
        key = self._key(labels)
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.count += 1
            series.sum += value
            series.min = min(series.min, value)
            series.max = max(series.max, value)

    # -- reading -----------------------------------------------------------------

    def count(self, **labels: str) -> int:
        """Observations recorded in the labeled series."""
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.count if series is not None else 0

    def _merged(self, keys: Iterable[tuple[str, ...]]) -> _HistogramSeries:
        merged = _HistogramSeries(len(self.buckets))
        for key in keys:
            series = self._series[key]
            for index, bucket_count in enumerate(series.bucket_counts):
                merged.bucket_counts[index] += bucket_count
            merged.count += series.count
            merged.sum += series.sum
            merged.min = min(merged.min, series.min)
            merged.max = max(merged.max, series.max)
        return merged

    def _quantile(self, series: _HistogramSeries, q: float) -> float:
        if series.count == 0:
            return 0.0
        target = q * series.count
        seen = 0.0
        for index, bucket_count in enumerate(series.bucket_counts):
            if bucket_count == 0:
                continue
            lower = self.buckets[index - 1] if index > 0 else 0.0
            upper = self.buckets[index] if index < len(self.buckets) else series.max
            # Tighten the edge buckets with the actually observed extremes.
            lower = max(lower, series.min) if seen == 0 else lower
            upper = min(upper, series.max)
            if upper < lower:
                upper = lower
            if seen + bucket_count >= target:
                fraction = (target - seen) / bucket_count
                return lower + (upper - lower) * fraction
            seen += bucket_count
        return series.max

    def quantile(self, q: float, **labels: str) -> float:
        """Estimated ``q``-quantile (``0 < q <= 1``) of the labeled series."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        with self._lock:
            key = self._key(labels)
            if key not in self._series:
                return 0.0
            return self._quantile(self._series[key], q)

    def _summarize(self, series: _HistogramSeries) -> dict[str, float]:
        if series.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": series.count,
            "sum": series.sum,
            "min": series.min,
            "max": series.max,
            "p50": self._quantile(series, 0.50),
            "p95": self._quantile(series, 0.95),
            "p99": self._quantile(series, 0.99),
        }

    def summary(self, **labels: str) -> dict[str, float]:
        """count / sum / min / max / p50 / p95 / p99 of the labeled series."""
        with self._lock:
            key = self._key(labels)
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
            return self._summarize(series)

    def merged_summary(self) -> dict[str, float]:
        """One summary merging every label combination of this family."""
        with self._lock:
            return self._summarize(self._merged(self._series.keys()))

    def series(self) -> dict[tuple[str, ...], dict[str, Any]]:
        """Per-label-set raw state: cumulative bucket counts, sum, count."""
        with self._lock:
            out: dict[tuple[str, ...], dict[str, Any]] = {}
            for key, series in self._series.items():
                cumulative: list[int] = []
                running = 0
                for bucket_count in series.bucket_counts:
                    running += bucket_count
                    cumulative.append(running)
                out[key] = {
                    "cumulative_buckets": cumulative,
                    "count": series.count,
                    "sum": series.sum,
                }
            return out

    def clear(self) -> None:
        with self._lock:
            self._series.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            values = [
                {"labels": dict(zip(self.label_names, key)), **self._summarize(series)}
                for key, series in sorted(self._series.items())
            ]
        return {
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "values": values,
        }


class MetricsRegistry:
    """A named collection of metrics sharing one enable switch.

    Components default to the process-wide registry
    (:func:`get_registry`); tests and benchmarks hand their own instance to
    whatever they want isolated.  ``enabled=False`` (or :meth:`disable`)
    turns every record call into a single-branch no-op — that is what
    ``ServiceConfig(metrics_enabled=False)`` plugs in.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._metrics: dict[str, Metric] = {}

    # -- switches ---------------------------------------------------------------

    def disable(self) -> None:
        """Stop recording (registered metric objects keep working as no-ops)."""
        self.enabled = False

    def enable(self) -> None:
        """Resume recording."""
        self.enabled = True

    # -- registration ------------------------------------------------------------

    def _get_or_create(self, cls: type, name: str, kwargs: dict[str, Any]) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = cls(name, registry=self, **kwargs)
                return metric
        # Conflicting re-registrations must fail HERE, loudly, not later on
        # the record hot path (a label-schema mismatch would otherwise only
        # surface as a ValueError inside .inc()), and never silently — a
        # histogram whose bucket ladder was silently discarded would corrupt
        # every quantile estimate downstream.
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}, not a {cls.kind}"
            )
        label_names = tuple(kwargs.get("label_names", ()))
        if metric.label_names != label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels {metric.label_names}, "
                f"not {label_names}"
            )
        buckets = kwargs.get("buckets")
        if buckets is not None and metric.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {name!r} already registered with buckets {metric.buckets}, "
                f"not {tuple(buckets)}"
            )
        return metric

    def counter(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
    ) -> Counter:
        """Get or create the counter family ``name``."""
        return self._get_or_create(Counter, name, {"help": help, "label_names": label_names})

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram family ``name``."""
        return self._get_or_create(
            Histogram, name, {"help": help, "label_names": label_names, "buckets": buckets}
        )

    def gauge(
        self,
        name: str,
        help: str = "",  # noqa: A002 - prometheus terminology
        label_names: tuple[str, ...] = (),
    ) -> Gauge:
        """Get or create the gauge family ``name``."""
        return self._get_or_create(Gauge, name, {"help": help, "label_names": label_names})

    def get(self, name: str) -> Metric | None:
        """The registered metric named ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        """Every registered metric, sorted by name."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every series while keeping registrations (and object refs) alive.

        Components hold direct references to their Counter/Histogram
        objects, so reset must clear values in place rather than dropping
        the metrics from the registry.
        """
        for metric in self.metrics():
            metric.clear()

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable view of the whole registry.

        Returns
        -------
        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` — the
        payload ``/healthz`` embeds and ``airphant stats --format json``
        prints.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter):
                target = counters
            elif isinstance(metric, Gauge):
                target = gauges
            else:
                target = histograms
            target[metric.name] = metric.snapshot()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def summary(self) -> dict[str, Any]:
        """Compact one-level view: counter totals + merged histogram summaries."""
        out: dict[str, Any] = {}
        for metric in self.metrics():
            if isinstance(metric, (Counter, Gauge)):
                out[metric.name] = metric.total
            elif isinstance(metric, Histogram):
                out[metric.name] = metric.merged_summary()
        return out

    def to_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format 0.0.4."""
        chunks = [render_metric(metric) for metric in self.metrics()]
        return "".join(chunk for chunk in chunks if chunk)


class _NullMetricsRegistry(MetricsRegistry):
    """The shared permanently-disabled registry behind ``NULL_REGISTRY``.

    It is one process-wide object handed to every ``metrics_enabled=False``
    service, so flipping it on would re-enable recording (and ``/metrics``
    serving) on *all* of them at once — :meth:`enable` therefore refuses.
    """

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def enable(self) -> None:
        raise RuntimeError(
            "NULL_REGISTRY is permanently disabled (it is shared by every "
            "metrics_enabled=False service); create your own MetricsRegistry "
            "to record into"
        )


#: The process-wide default registry every instrumented layer reports into
#: unless handed an explicit one.
_DEFAULT_REGISTRY = MetricsRegistry()

#: A permanently disabled registry: plug in wherever recording must be a
#: no-op (``ServiceConfig(metrics_enabled=False)`` hands this around).
NULL_REGISTRY = _NullMetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY
