"""Command-line interface for Airphant.

Exposes the Builder and the query service over a local directory acting as
the storage bucket (the same layout ``gcsfuse`` exposes for a real Cloud
Storage bucket), so an index can be built once and searched from any
process — one-shot or as a long-lived HTTP query node:

.. code-block:: console

    # generate a demo corpus (or copy your own line-delimited blobs in)
    airphant generate --bucket ./bucket --kind hdfs --documents 20000

    # profile it, build an index, and search it
    airphant profile --bucket ./bucket --blobs corpora/hdfs.txt
    airphant build   --bucket ./bucket --blobs corpora/hdfs.txt --index hdfs-index
    airphant search  --bucket ./bucket --index hdfs-index --query "ERROR" --top-k 5

    # or serve the bucket's indexes over HTTP (see repro.service.http)
    airphant serve   --bucket ./bucket --port 8080
    curl -s localhost:8080/healthz
    curl -s -XPOST localhost:8080/search \\
         -d '{"index": "hdfs-index", "query": "ERROR", "top_k": 5}'

    # live ingestion: WAL-durable appends, searchable immediately; flush
    # folds the memtable into a delta, compact folds deltas into the base
    airphant ingest  --bucket ./bucket --index hdfs-index --doc "ERROR new event"
    curl -s -XPOST localhost:8080/indexes/hdfs-index/docs \\
         -d '{"documents": ["ERROR another event"]}'
    airphant compact --bucket ./bucket --index hdfs-index

``search`` and ``serve`` are thin wrappers over
:class:`repro.service.AirphantService`; ``search --json`` prints the same
``SearchResponse`` JSON the HTTP API returns.  Every subcommand accepts
``--simulate-latency`` to wrap the bucket in the simulated cloud latency
model, which also reports per-query simulated latencies the way the
benchmarks do.

Instead of ``--bucket DIR``, any subcommand takes ``--store URI`` to target
a registered storage backend (``mem://``, ``file://``, ``sim://``,
``http(s)://``, ``s3://`` — see :mod:`repro.storage.registry`), e.g. search
an index exported to a static file server:

.. code-block:: console

    python -m http.server 9000 --directory ./bucket &
    airphant search --store http://127.0.0.1:9000 --index hdfs-index --query "ERROR"

``--retries`` / ``--retry-backoff-ms`` / ``--timeout-s`` / ``--hedge-ms``
wrap the chosen backend in a :class:`repro.storage.ResilientStore`
(bounded retries with jittered exponential backoff, per-request timeouts,
hedged duplicate reads after an adaptive latency percentile).

``airphant stats`` prints the unified request metrics
(:mod:`repro.observability`): point it at a store to probe it (optionally
replaying a query first) or at a running ``serve`` node with ``--url`` to
scrape its live counters:

.. code-block:: console

    airphant stats --store ./bucket --index hdfs-index --query "ERROR" --repeat 20
    airphant stats --url http://127.0.0.1:8080 --format prometheus
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.core.config import SketchConfig
from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.profiling.profiler import profile_documents
from repro.service import (
    AirphantService,
    SearchRequest,
    SearchResponse,
    ServiceConfig,
    ServiceError,
    serve_forever,
)
from repro.storage.base import ObjectStore, StoreError
from repro.storage.latency import AffineLatencyModel
from repro.storage.local import LocalObjectStore
from repro.storage.registry import StoreURIError, open_store
from repro.storage.simulated import SimulatedCloudStore
from repro.workloads.cranfield import generate_cranfield
from repro.workloads.logs import LOG_SYSTEMS, generate_log_corpus
from repro.workloads.synthetic import SyntheticSpec, generate_synthetic


def _service_config(args: argparse.Namespace) -> ServiceConfig:
    """Translate the parsed CLI flags into one :class:`ServiceConfig`."""
    defaults = ServiceConfig()
    return ServiceConfig(
        query_cache_size=getattr(args, "query_cache_size", 0),
        coalesce_gap=getattr(args, "coalesce_gap", 0),
        read_cache_bytes=getattr(args, "read_cache_bytes", 0),
        retries=args.retries,
        retry_backoff_ms=args.retry_backoff_ms,
        request_timeout_s=args.timeout_s,
        hedge_ms=args.hedge_ms,
        ingest_flush_docs=getattr(args, "flush_docs", defaults.ingest_flush_docs),
        ingest_flush_bytes=getattr(args, "flush_bytes", defaults.ingest_flush_bytes),
        ingest_compact_deltas=getattr(
            args, "compact_deltas", defaults.ingest_compact_deltas
        ),
        ingest_compact_ratio=getattr(
            args, "compact_ratio", defaults.ingest_compact_ratio
        ),
        ingest_interval_s=getattr(args, "ingest_interval_s", defaults.ingest_interval_s),
        peers=tuple(
            peer.strip()
            for entry in (getattr(args, "peers", None) or [])
            for peer in entry.split(",")
            if peer.strip()
        ),
        replication_factor=getattr(
            args, "replication_factor", defaults.replication_factor
        ),
        shard_timeout_s=getattr(args, "shard_timeout_s", defaults.shard_timeout_s),
        node_hedge_ms=getattr(args, "node_hedge_ms", defaults.node_hedge_ms),
        node_retries=getattr(args, "node_retries", defaults.node_retries),
        probe_interval_s=getattr(args, "probe_interval_s", defaults.probe_interval_s),
        metrics_enabled=not getattr(args, "no_metrics", False),
        tracing_enabled=not getattr(args, "no_tracing", False),
        trace_sample_rate=getattr(
            args, "trace_sample_rate", defaults.trace_sample_rate
        ),
        slow_query_ms=getattr(args, "slow_query_ms", defaults.slow_query_ms),
    )


def _open_store(args: argparse.Namespace, config: ServiceConfig | None = None) -> ObjectStore:
    """Resolve ``--bucket DIR`` / ``--store URI`` (plus wrappers) to a store.

    The resilience wrapper is applied *inside* the simulated-latency layer:
    the fetcher must see the simulator on top (virtual-clock batch timing),
    while retries/timeouts/hedging still guard the real backend underneath —
    so ``--simulate-latency`` and ``--retries`` compose instead of one
    silently disabling the other.
    """
    config = config if config is not None else _service_config(args)
    if args.store:
        store = open_store(args.store)
    else:
        store = LocalObjectStore(args.bucket)
    store = config.wrap_store(store)
    if args.simulate_latency and not isinstance(store, SimulatedCloudStore):
        store = SimulatedCloudStore(backend=store, latency_model=AffineLatencyModel())
    return store


def _open_service(args: argparse.Namespace) -> AirphantService:
    """Open the bucket/store behind an :class:`AirphantService` facade."""
    config = _service_config(args)
    return AirphantService(_open_store(args, config), config, store_uri=args.store)


def _add_common_arguments(parser: argparse.ArgumentParser, allow_url: bool = False) -> None:
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--bucket", help="directory acting as the storage bucket")
    target.add_argument(
        "--store",
        help=(
            "object-store URI: mem://, file://PATH, sim://, "
            "http(s)://host[:port]/prefix, or s3://bucket/prefix?endpoint=..."
        ),
    )
    if allow_url:
        target.add_argument(
            "--url",
            help="base URL of a running `airphant serve` node to scrape instead",
        )
    parser.add_argument(
        "--simulate-latency",
        action="store_true",
        help="charge simulated cloud-storage latencies and report them",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry transient store failures this many times (0 disables)",
    )
    parser.add_argument(
        "--retry-backoff-ms",
        type=float,
        default=20.0,
        help="first-retry backoff in ms (doubles per retry, jittered)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        help="per-attempt store request timeout in seconds",
    )
    parser.add_argument(
        "--hedge-ms",
        type=float,
        default=0.0,
        help="hedge slow reads with a duplicate request after this many ms (0 disables)",
    )


def _add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--coalesce-gap",
        type=int,
        default=0,
        help="largest same-blob gap (bytes) merged into one range read",
    )
    parser.add_argument(
        "--read-cache-bytes",
        type=int,
        default=0,
        help="read-pipeline block cache budget in bytes (0 disables)",
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if args.kind in LOG_SYSTEMS:
        corpus = generate_log_corpus(store, args.kind, num_documents=args.documents, seed=args.seed)
    elif args.kind == "cranfield":
        corpus = generate_cranfield(store, num_documents=args.documents, seed=args.seed)
    else:
        spec = SyntheticSpec(
            num_documents=args.documents,
            num_words=max(args.documents, 100),
            words_per_document=10,
        )
        corpus = generate_synthetic(store, args.kind, spec, seed=args.seed)
    print(f"wrote {corpus.num_documents} documents to {corpus.blob_names[0]}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    store = _open_store(args)
    parser = LineDelimitedCorpusParser()
    documents = list(parser.parse(store, args.blobs))
    profile = profile_documents(documents)
    report = {
        "documents": profile.num_documents,
        "terms": profile.num_terms,
        "words": profile.num_words,
        "mean_distinct_words_per_document": round(profile.mean_distinct_words, 2),
        "sigma_x": round(profile.sigma_x(), 4),
    }
    print(json.dumps(report, indent=2))
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    service = _open_service(args)
    config = SketchConfig(
        num_bins=args.bins,
        target_false_positives=args.target_fp,
        num_layers=args.layers,
        seed=args.seed,
    )
    try:
        info = service.build_index(
            args.index,
            args.blobs,
            sketch_config=config,
            num_shards=args.shards,
            partitioner=args.partitioner,
            format_version={"v1": 1, "v2": 2}[args.format],
        )
    except ServiceError as error:
        print(f"error: {error.info.message}", file=sys.stderr)
        return 2
    if args.listing:
        # Publish/refresh the bucket's listing manifest so static HTTP
        # exports of this bucket support catalog discovery (GET /indexes).
        from repro.storage.listing import LISTING_BLOB, write_listing

        listed = write_listing(service.store)
        print(f"wrote listing manifest {LISTING_BLOB!r} ({len(listed)} blobs)")
    print(
        f"built index {info.name!r}: {info.num_documents} documents, "
        f"{info.num_terms} terms, L = {info.num_layers}, "
        f"expected false positives = {info.expected_false_positives:.4f}, "
        f"storage = {info.storage_bytes} bytes"
    )
    if info.num_shards > 1:
        print(f"sharded over {info.num_shards} shards ({args.partitioner}):")
        for shard in info.shards:
            print(f"  {shard.name}: {shard.num_documents} documents, {shard.num_terms} terms")
    return 0


def _resolve_mode(args: argparse.Namespace) -> str:
    """Query mode from ``--mode`` (preferred) or the legacy boolean flags."""
    mode = getattr(args, "mode", None)
    if mode is not None:
        # CLI flag values use dashes; the API mode name uses an underscore.
        return mode.replace("-", "_") if mode == "topk-bm25" else mode
    if getattr(args, "regex", False):
        return "regex"
    if getattr(args, "boolean", False):
        return "boolean"
    return "keyword"


def _parse_weights(entries: list[str] | None) -> dict[str, float] | None:
    """Parse repeated ``--weight TERM=MULTIPLIER`` flags into a mapping."""
    if not entries:
        return None
    weights: dict[str, float] = {}
    for entry in entries:
        term, separator, value = entry.partition("=")
        if not separator or not term:
            raise ValueError(f"--weight expects TERM=MULTIPLIER, got {entry!r}")
        weights[term] = float(value)
    return weights


def _cmd_search(args: argparse.Namespace) -> int:
    service = _open_service(args)
    mode = _resolve_mode(args)
    try:
        request = SearchRequest(
            query=args.query,
            index=args.index,
            mode=mode,
            top_k=args.top_k,
            weights=_parse_weights(args.weight),
            explain=bool(getattr(args, "explain", False)),
        )
        if request.explain:
            # The facade's search() path attaches the span tree; execute()
            # (below) returns the raw result without one.
            return _search_explain(service, request, args)
        result = service.execute(request)
    except (ServiceError, ValueError) as error:
        message = error.info.message if isinstance(error, ServiceError) else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        # The same SearchResponse JSON the HTTP API returns for this request.
        print(SearchResponse.from_result(request, result).to_json(indent=2))
    elif result.scores is not None:
        # Ranked mode: best-first with each document's normalized score.
        for score, document in zip(result.scores, result.documents):
            print(f"{score:.4f}\t{document.text}")
    else:
        for document in result.documents:
            print(document.text)
    summary = f"{result.num_results} result(s), {result.false_positive_count} false positive(s) filtered"
    if args.simulate_latency:
        summary += f", {result.latency_ms:.1f} ms simulated"
    print(summary, file=sys.stderr)
    return 0 if result.num_results > 0 else 1


def _search_explain(
    service: AirphantService, request: SearchRequest, args: argparse.Namespace
) -> int:
    """Run one explained query and render its span tree + wave summary."""
    from repro.observability.tracing import render_trace

    try:
        response = service.search(request)
    except (ServiceError, ValueError) as error:
        message = error.info.message if isinstance(error, ServiceError) else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        print(response.to_json(indent=2))
        return 0 if response.documents else 1
    for hit in response.documents:
        text = hit.text if hit.text is not None else f"{hit.blob}@{hit.offset}+{hit.length}"
        if hit.score is not None:
            print(f"{hit.score:.4f}\t{text}")
        else:
            print(text)
    trace = response.trace
    if trace is None:
        print("(no trace attached; tracing is disabled)", file=sys.stderr)
    else:
        print(f"\ntrace {trace['trace_id']}:", file=sys.stderr)
        print(render_trace(trace["spans"]), file=sys.stderr)
        summary = trace.get("summary") or {}
        for number, wave in enumerate(summary.get("waves") or [], start=1):
            print(
                f"wave {number}: requests={wave['requests']} "
                f"physical={wave['physical_requests']} "
                f"bytes={wave['bytes_fetched']} cache_hits={wave['cache_hits']}",
                file=sys.stderr,
            )
        totals = summary.get("totals") or {}
        if totals:
            print(
                f"totals: spans={totals['spans']} waves={totals['waves']} "
                f"requests={totals['requests']} bytes={totals['bytes_fetched']} "
                f"cache_hits={totals['cache_hits']} hedges={totals['hedges']} "
                f"retries={totals['retries']} "
                f"refunded_bytes={totals['refunded_bytes']}",
                file=sys.stderr,
            )
    print(
        f"{len(response.documents)} result(s), "
        f"{response.false_positive_count} false positive(s) filtered",
        file=sys.stderr,
    )
    return 0 if response.documents else 1


def _cmd_traces(args: argparse.Namespace) -> int:
    """List (or fetch one of) the traces a running serve node retained."""
    import urllib.error
    import urllib.request

    from repro.observability.tracing import render_trace

    base = args.url.rstrip("/")
    path = f"/traces/{args.trace}" if args.trace else f"/traces?limit={args.limit}"
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=10.0) as response:
            payload = json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8", "replace")
        try:
            message = json.loads(body).get("message", body)
        except json.JSONDecodeError:
            message = body
        print(f"error: {base}{path} answered {error.code}: {message}", file=sys.stderr)
        return 2
    except (
        urllib.error.URLError,
        TimeoutError,
        ConnectionError,
        OSError,
        json.JSONDecodeError,
    ) as error:
        print(f"error: could not fetch {base}{path}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if args.trace:
        print(f"trace {payload['trace_id']}:")
        print(render_trace(payload["spans"]))
        return 0
    traces = payload.get("traces") or []
    if not traces:
        print("(no retained traces)", file=sys.stderr)
        return 0
    for entry in traces:
        duration = entry.get("duration_ms")
        timing = f"{duration:.2f} ms" if isinstance(duration, (int, float)) else "?"
        attrs = entry.get("attrs") or {}
        detail = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
        print(
            f"{entry['trace_id']}\t{entry['name']}\t{timing}\t"
            f"{entry['spans']} span(s)\t{detail}"
        )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.url:
        if args.query or args.index or args.repeat != 1:
            # Scrape mode reads a remote node's counters; it cannot replay
            # queries there — silently ignoring these flags would make the
            # snapshot look like the replay happened.
            print(
                "error: --query/--index/--repeat replay against a local store; "
                "they cannot be combined with --url (scrape mode)",
                file=sys.stderr,
            )
            return 2
        return _scrape_stats(args)
    if args.query and not args.index:
        print("error: --query needs --index", file=sys.stderr)
        return 2
    service = _open_service(args)
    if args.query:
        request = SearchRequest(
            query=args.query, index=args.index, mode=_resolve_mode(args), top_k=args.top_k
        )
        try:
            for _ in range(args.repeat):
                service.execute(request)
        except ServiceError as error:
            print(f"error: {error.info.message}", file=sys.stderr)
            return 2
    elif args.index:
        # No query to replay: still touch the index so the snapshot shows
        # the open/header-read traffic instead of an empty registry.
        try:
            service.index_info(args.index)
        except ServiceError as error:
            print(f"error: {error.info.message}", file=sys.stderr)
            return 2
    if args.format == "prometheus":
        print(service.metrics.to_prometheus(), end="")
    else:
        print(json.dumps(service.metrics.snapshot(), indent=2))
    return 0


def _scrape_stats(args: argparse.Namespace) -> int:
    """Scrape a live query node: /metrics (prometheus) or /healthz (json)."""
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")
    path = "/metrics" if args.format == "prometheus" else "/healthz"
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=10.0) as response:
            payload = response.read().decode("utf-8")
    except (urllib.error.URLError, TimeoutError, ConnectionError, OSError) as error:
        print(f"error: could not scrape {base}{path}: {error}", file=sys.stderr)
        return 2
    if args.format == "prometheus":
        print(payload, end="")
    else:
        try:
            health = json.loads(payload)
        except json.JSONDecodeError as error:
            # A proxy splash page or some non-airphant server answered 200.
            print(
                f"error: {base}{path} did not answer JSON ({error}); "
                "is this an airphant serve node?",
                file=sys.stderr,
            )
            return 2
        print(json.dumps(health.get("metrics", {}), indent=2))
    return 0


def _add_ingest_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = ServiceConfig()
    parser.add_argument(
        "--flush-docs",
        type=int,
        default=defaults.ingest_flush_docs,
        help="memtable document count that triggers a background flush",
    )
    parser.add_argument(
        "--flush-bytes",
        type=int,
        default=defaults.ingest_flush_bytes,
        help="memtable byte budget that triggers a background flush",
    )
    parser.add_argument(
        "--compact-deltas",
        type=int,
        default=defaults.ingest_compact_deltas,
        help="stacked-delta count that triggers background compaction (0 disables)",
    )
    parser.add_argument(
        "--compact-ratio",
        type=float,
        default=defaults.ingest_compact_ratio,
        help="delta/base byte ratio that triggers compaction (0 disables)",
    )
    parser.add_argument(
        "--ingest-interval-s",
        type=float,
        default=defaults.ingest_interval_s,
        help="background ingest-worker poll interval in seconds (0 disables)",
    )


def _read_ingest_documents(args: argparse.Namespace) -> list[str]:
    """Collect the documents an ``airphant ingest`` invocation appends."""
    documents = list(args.doc or [])
    if args.input:
        if args.input == "-":
            lines = sys.stdin.read().splitlines()
        else:
            with open(args.input, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        documents.extend(line for line in lines if line.strip())
    return documents


def _cmd_ingest(args: argparse.Namespace) -> int:
    documents = _read_ingest_documents(args)
    if not documents:
        print("error: nothing to ingest (use --doc and/or --input)", file=sys.stderr)
        return 2
    service = _open_service(args)
    try:
        outcome = service.append_documents(args.index, documents)
        if args.flush:
            flushed = service.flush_index(args.index)
            outcome["flush"] = {"flushed": flushed["flushed"], "delta": flushed["delta"]}
    except ServiceError as error:
        print(f"error: {error.info.message}", file=sys.stderr)
        return 2
    finally:
        service.close()
    summary = (
        f"appended {outcome['appended']} document(s) to {args.index!r} "
        f"(wal segment {outcome['wal_segment']}, "
        f"{outcome['memtable_documents']} memtable document(s))"
    )
    if "flush" in outcome:
        summary += f"; flushed into {outcome['flush']['delta']!r}"
    print(summary)
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    service = _open_service(args)
    try:
        outcome = service.compact_index(args.index)
    except ServiceError as error:
        print(f"error: {error.info.message}", file=sys.stderr)
        return 2
    finally:
        service.close()
    if not outcome["compacted"]:
        print(f"index {args.index!r}: nothing to compact")
    else:
        print(
            f"compacted {args.index!r}: folded {outcome['deltas_folded']} delta(s) "
            f"into generation {outcome['generation']} ({outcome['base']!r}) "
            f"in {outcome['seconds']:.2f}s"
        )
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    if args.action != "list" and not args.snapshot:
        print(f"error: --snapshot is required for {args.action!r}", file=sys.stderr)
        return 2
    service = _open_service(args)
    try:
        if args.action == "create":
            outcome = service.create_snapshot(args.index, args.snapshot)
            print(
                f"snapshot {outcome['snapshot']!r} of {args.index!r} created "
                f"(generation {outcome['generation']}, "
                f"{outcome['delta_indexes']} delta(s), "
                f"{outcome['tombstones']} pending delete(s))"
            )
        elif args.action == "restore":
            outcome = service.restore_snapshot(args.index, args.snapshot)
            print(
                f"index {args.index!r} restored to snapshot "
                f"{outcome['snapshot']!r} (generation {outcome['generation']}, "
                f"{outcome['tombstones']} pending delete(s))"
            )
        elif args.action == "delete":
            service.delete_snapshot(args.index, args.snapshot)
            print(f"snapshot {args.snapshot!r} of {args.index!r} deleted")
        else:  # list
            snapshots = service.list_snapshots(args.index)
            if not snapshots:
                print(f"index {args.index!r} has no snapshots")
            for entry in snapshots:
                print(
                    f"{entry['snapshot']}\tgeneration={entry['generation']}\t"
                    f"deltas={entry['delta_indexes']}\t"
                    f"tombstones={entry['tombstones']}\t"
                    f"created_at={entry['created_at']:.0f}"
                )
    except ServiceError as error:
        print(f"error: {error.info.message}", file=sys.stderr)
        return 2
    finally:
        service.close()
    return 0


def _add_cluster_arguments(parser: argparse.ArgumentParser) -> None:
    cluster = parser.add_argument_group("cluster (scale-out query tier)")
    cluster.add_argument(
        "--peers",
        action="append",
        metavar="URL[,URL...]",
        help=(
            "base URLs of the cluster's searcher nodes (repeat or "
            "comma-separate; include this node's own URL); turns the node "
            "into a scatter-gather query router"
        ),
    )
    cluster.add_argument(
        "--replication-factor",
        type=int,
        default=ServiceConfig.replication_factor,
        help="distinct nodes each shard is placed on (failover/hedge targets)",
    )
    cluster.add_argument(
        "--shard-timeout-s",
        type=float,
        default=ServiceConfig.shard_timeout_s,
        help="wall-clock bound on one node's shard-subset answer",
    )
    cluster.add_argument(
        "--node-hedge-ms",
        type=float,
        default=ServiceConfig.node_hedge_ms,
        help="duplicate an unanswered shard query to the next replica after this many ms (0 disables)",
    )
    cluster.add_argument(
        "--node-retries",
        type=int,
        default=ServiceConfig.node_retries,
        help="extra passes over a shard's replica set before answering partially",
    )
    cluster.add_argument(
        "--probe-interval-s",
        type=float,
        default=ServiceConfig.probe_interval_s,
        help="period of the background peer /healthz probes (0 disables)",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _open_service(args)
    names = service.catalog.names()
    origin = args.store if args.store else args.bucket
    role = (
        f"router over {len(service.config.peers)} peer(s)"
        if service.config.peers
        else "standalone node"
    )
    print(
        f"serving {len(names)} index(es) from {origin!r} "
        f"on http://{args.host}:{args.port} ({role})",
        file=sys.stderr,
    )
    serve_forever(
        service,
        host=args.host,
        port=args.port,
        log_format=getattr(args, "log_format", "text"),
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level ``airphant`` argument parser."""
    parser = argparse.ArgumentParser(prog="airphant", description=__doc__.splitlines()[0])
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a demo corpus into the bucket")
    _add_common_arguments(generate)
    generate.add_argument(
        "--kind",
        default="hdfs",
        choices=sorted(LOG_SYSTEMS) + ["cranfield", "diag", "unif", "zipf"],
        help="corpus family to generate",
    )
    generate.add_argument("--documents", type=int, default=10_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    profile = subparsers.add_parser("profile", help="print corpus statistics (Table II style)")
    _add_common_arguments(profile)
    profile.add_argument("--blobs", nargs="+", required=True, help="corpus blob names")
    profile.set_defaults(func=_cmd_profile)

    build = subparsers.add_parser("build", help="build and persist an IoU Sketch index")
    _add_common_arguments(build)
    build.add_argument("--blobs", nargs="+", required=True, help="corpus blob names")
    build.add_argument("--index", required=True, help="index name (blob prefix)")
    build.add_argument("--bins", type=int, default=100_000, help="bin budget B")
    build.add_argument("--target-fp", type=float, default=1.0, help="accuracy target F0")
    build.add_argument("--layers", type=int, default=None, help="pin the layer count (skip Algorithm 1)")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument(
        "--shards",
        type=int,
        default=1,
        help="number of index shards (1 = classic single-shard layout)",
    )
    build.add_argument(
        "--partitioner",
        default="hash",
        choices=["hash", "round-robin"],
        help="how documents are routed to shards",
    )
    build.add_argument(
        "--format",
        default="v2",
        choices=["v1", "v2"],
        help="superpost codec: v2 (delta-coded, default) or v1 (legacy, "
        "readable by pre-v2 searchers)",
    )
    build.add_argument(
        "--listing",
        action="store_true",
        help="also write the bucket's listing manifest (manifest.json), "
        "enabling catalog discovery over plain http(s):// exports",
    )
    build.set_defaults(func=_cmd_build)

    search = subparsers.add_parser("search", help="search a previously built index")
    _add_common_arguments(search)
    search.add_argument("--index", required=True, help="index name (blob prefix)")
    search.add_argument("--query", required=True)
    search.add_argument(
        "-k",
        "--top-k",
        dest="top_k",
        type=int,
        default=None,
        help="result cap; for --mode topk-bm25 the ranked k (default 10)",
    )
    search.add_argument(
        "--mode",
        choices=("keyword", "boolean", "regex", "topk-bm25"),
        default=None,
        help="query mode (topk-bm25 returns BM25-scored results, best first)",
    )
    search.add_argument("--boolean", action="store_true", help="treat the query as AND/OR syntax")
    search.add_argument("--regex", action="store_true", help="treat the query as a regular expression")
    search.add_argument(
        "--weight",
        action="append",
        metavar="TERM=MULTIPLIER",
        help="boost/damp one query term in topk-bm25 mode (repeatable)",
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="print the full SearchResponse JSON instead of document text",
    )
    search.add_argument(
        "--explain",
        action="store_true",
        help="trace the query and print its span tree and per-wave fetch "
        "summary (requests, bytes, cache hits) after the results",
    )
    search.add_argument(
        "--query-cache-size",
        type=int,
        default=0,
        help="per-word postings cache capacity (0 disables)",
    )
    _add_pipeline_arguments(search)
    search.set_defaults(func=_cmd_search)

    stats = subparsers.add_parser(
        "stats",
        help="print request metrics: probe a store (optionally replaying a query) "
        "or scrape a running serve node via --url",
    )
    _add_common_arguments(stats, allow_url=True)
    stats.add_argument("--index", help="index to open / query (optional)")
    stats.add_argument("--query", help="query to replay before snapshotting (needs --index)")
    stats.add_argument("--top-k", type=int, default=None)
    stats.add_argument(
        "--mode",
        choices=("keyword", "boolean", "regex", "topk-bm25"),
        default=None,
        help="query mode for the replayed query",
    )
    stats.add_argument("--boolean", action="store_true", help="treat the query as AND/OR syntax")
    stats.add_argument("--regex", action="store_true", help="treat the query as a regular expression")
    stats.add_argument(
        "--repeat", type=int, default=1, help="times the query is replayed before the snapshot"
    )
    stats.add_argument(
        "--format",
        default="json",
        choices=["json", "prometheus"],
        help="snapshot rendering: JSON registry dump or Prometheus exposition text",
    )
    _add_pipeline_arguments(stats)
    stats.add_argument(
        "--query-cache-size",
        type=int,
        default=0,
        help="per-word postings cache capacity (0 disables)",
    )
    stats.set_defaults(func=_cmd_stats)

    traces = subparsers.add_parser(
        "traces",
        help="list or render the query traces a running serve node retained",
    )
    traces.add_argument(
        "--url",
        required=True,
        help="base URL of a running `airphant serve` node",
    )
    traces.add_argument("--trace", help="render one trace id as a span tree")
    traces.add_argument(
        "--limit", type=int, default=20, help="newest-first traces to list"
    )
    traces.add_argument(
        "--json", action="store_true", help="print the raw JSON payload instead"
    )
    traces.set_defaults(func=_cmd_traces)

    ingest = subparsers.add_parser(
        "ingest",
        help="append documents to a live index (WAL-durable, searchable at once)",
    )
    _add_common_arguments(ingest)
    ingest.add_argument("--index", required=True, help="index name (blob prefix)")
    ingest.add_argument(
        "--doc",
        action="append",
        help="a document to append (repeatable; one line each)",
    )
    ingest.add_argument(
        "--input",
        help="file of documents to append, one per line ('-' reads stdin)",
    )
    ingest.add_argument(
        "--flush",
        action="store_true",
        help="fold the memtable into a delta index before exiting",
    )
    ingest.set_defaults(func=_cmd_ingest)

    compact = subparsers.add_parser(
        "compact",
        help="flush and fold an index's delta indexes into a new base generation",
    )
    _add_common_arguments(compact)
    compact.add_argument("--index", required=True, help="index name (blob prefix)")
    compact.set_defaults(func=_cmd_compact)

    snapshot = subparsers.add_parser(
        "snapshot",
        help="create, restore, list, or delete point-in-time index snapshots",
    )
    _add_common_arguments(snapshot)
    snapshot.add_argument(
        "action",
        choices=("create", "restore", "list", "delete"),
        help="what to do with the index's snapshots",
    )
    snapshot.add_argument("--index", required=True, help="index name (blob prefix)")
    snapshot.add_argument(
        "--snapshot",
        help="snapshot name (required for create/restore/delete)",
    )
    snapshot.set_defaults(func=_cmd_snapshot)

    serve = subparsers.add_parser(
        "serve", help="serve the bucket's indexes over a JSON HTTP API"
    )
    _add_common_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=8080, help="port to bind")
    serve.add_argument(
        "--query-cache-size",
        type=int,
        default=0,
        help="per-word postings cache capacity shared by served queries (0 disables)",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="disable the metrics exports (GET /metrics answers 404, /healthz "
        "drops its metrics block) and service-level query accounting",
    )
    serve.add_argument(
        "--log-format",
        default="text",
        choices=["text", "json"],
        help="request-log format: stdlib text lines or one JSON object per "
        "request (method, path, status, duration_ms, trace_id)",
    )
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable query tracing (GET /traces answers 404, explain "
        "requests carry no trace)",
    )
    serve.add_argument(
        "--trace-sample-rate",
        type=float,
        default=ServiceConfig.trace_sample_rate,
        help="fraction of ordinary queries whose traces are retained for "
        "GET /traces (explained and slow queries are always kept)",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=ServiceConfig.slow_query_ms,
        help="queries slower than this emit a structured slow-query log "
        "line and are always retained (0 disables)",
    )
    _add_pipeline_arguments(serve)
    _add_ingest_arguments(serve)
    _add_cluster_arguments(serve)
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point used by both ``airphant`` and ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (StoreURIError, StoreError) as error:
        # Bad --store URIs, read-only backends under generate/build,
        # exhausted retries, denied access — anywhere a storage failure
        # escapes a subcommand, report it like the service errors above
        # instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro`
    raise SystemExit(main())
