"""JSON HTTP front-end for :class:`~repro.service.facade.AirphantService`.

A deliberately dependency-free server (stdlib ``http.server`` only) so a
query node can be started anywhere the bucket is reachable:

* ``GET  /healthz`` — liveness plus catalog/config/metrics summary (and, on
  clustered nodes, the ``cluster`` peer-health block);
* ``GET  /metrics`` — the node's metrics registry in Prometheus text
  exposition format (404 when ``metrics_enabled`` is off);
* ``GET  /traces`` — newest-first summaries of the retained query traces
  (404 when ``tracing_enabled`` is off; ``?limit=N`` caps the list);
* ``GET  /traces/{id}`` — one retained trace as its full span tree plus
  the per-wave fetch summary;
* ``GET  /cluster`` — topology, per-index shard assignments, and peer
  health of a clustered node (404 when no peers are configured);
* ``GET  /indexes`` — every servable index as an ``IndexInfo`` list;
* ``GET  /indexes/{name}`` — one index's ``IndexInfo``;
* ``POST /search`` — a ``SearchRequest`` JSON body, answered with a
  ``SearchResponse``.  On a clustered node a request without ``shards``
  is scatter-gathered over the peers; with ``shards`` it is answered
  locally over just those ordinals (the router's sub-request form);
* ``POST /indexes/{name}/build`` — build/rebuild an index from corpus blobs
  already present in the bucket (body: ``{"blobs": [...], "num_bins": ...,
  "num_shards": ..., "partitioner": ...}``);
* ``POST /indexes/{name}/docs`` — append documents to a live index (body:
  ``{"documents": ["one doc per entry", ...]}``); WAL-durable and
  searchable in every query mode when the call returns;
* ``POST /indexes/{name}/docs/delete`` — tombstone documents by reference
  (body: ``{"refs": [{"blob": ..., "offset": ..., "length": ...}, ...]}``);
  WAL-durable and invisible in every tier when the call returns;
* ``POST /indexes/{name}/docs/update`` — atomically replace one document
  (body: ``{"ref": {...}, "document": "new text"}``);
* ``POST /indexes/{name}/flush`` — fold the memtable into a delta index now;
* ``POST /indexes/{name}/compact`` — flush, then fold all deltas into a new
  base generation now (this is also what physically purges tombstones);
* ``GET  /indexes/{name}/snapshots`` — list the index's snapshots;
* ``POST /indexes/{name}/snapshots`` — create a point-in-time snapshot
  (body: ``{"snapshot": "nightly-01"}``);
* ``POST /indexes/{name}/snapshots/{snap}/restore`` — roll the index back;
* ``POST /indexes/{name}/snapshots/{snap}/delete`` — drop a snapshot.

Errors come back as ``ErrorInfo`` JSON bodies with matching HTTP status
codes.  Requests are served by a thread pool (``ThreadingHTTPServer``);
the facade's catalog is lock-protected, and searchers are safe for
concurrent reads.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.core.config import SketchConfig
from repro.observability import PROMETHEUS_CONTENT_TYPE
from repro.observability.tracing import (
    PARENT_SPAN_HEADER,
    TRACE_ID_HEADER,
    explain_payload,
    new_id,
)
from repro.service.api import ErrorInfo, SearchRequest, ServiceError
from repro.service.facade import AirphantService

#: Request-log formats ``serve --log-format`` may choose from.
LOG_FORMATS = ("text", "json")


@dataclass(frozen=True)
class _TextResponse:
    """A route result served verbatim instead of being JSON-encoded."""

    text: str
    content_type: str = "text/plain; charset=utf-8"

#: SketchConfig fields a build request body may set.
_BUILD_CONFIG_FIELDS = (
    "num_bins",
    "target_false_positives",
    "num_layers",
    "seed",
)

#: Sharding fields a build request body may set (passed to the builder, not
#: the sketch configuration).
_BUILD_SHARD_FIELDS = ("num_shards", "partitioner")

#: Superpost codec names a build request's ``format`` field may use.
_BUILD_FORMATS = {"v1": 1, "v2": 2}


def _parse_ref(entry: Any) -> "Posting":
    """Validate one ``{blob, offset, length}`` document reference (400 on junk)."""
    from repro.parsing.documents import Posting

    if not isinstance(entry, Mapping):
        raise ServiceError(
            400, "bad_ingest_request", "a document reference must be a "
            "{blob, offset, length} object"
        )
    unknown = set(entry) - {"blob", "offset", "length"}
    if unknown:
        raise ServiceError(
            400,
            "bad_ingest_request",
            f"unknown reference field(s): {', '.join(sorted(unknown))}",
        )
    blob = entry.get("blob")
    offset = entry.get("offset")
    length = entry.get("length")
    if (
        not isinstance(blob, str)
        or not blob
        or not isinstance(offset, int)
        or isinstance(offset, bool)
        or offset < 0
        or not isinstance(length, int)
        or isinstance(length, bool)
        or length <= 0
    ):
        raise ServiceError(
            400,
            "bad_ingest_request",
            "a document reference needs a non-empty 'blob' string, a "
            "non-negative 'offset' integer, and a positive 'length' integer",
        )
    return Posting(blob=blob, offset=offset, length=length)


def _split_snapshot_path(path: str, action: str) -> tuple[str, str]:
    """Split ``/indexes/{name}/snapshots/{snap}{action}`` into its two names."""
    middle = path[len("/indexes/") : -len(action)]
    marker = "/snapshots/"
    position = middle.rfind(marker)
    if position <= 0 or not middle[position + len(marker) :]:
        raise ServiceError(404, "not_found", f"no route for POST {path}")
    return middle[:position], middle[position + len(marker) :]


class AirphantHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AirphantService`."""

    daemon_threads = True

    def __init__(
        self,
        service: AirphantService,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
        log_format: str = "text",
    ) -> None:
        if log_format not in LOG_FORMATS:
            raise ValueError(
                f"unknown log_format {log_format!r}; expected one of {', '.join(LOG_FORMATS)}"
            )
        super().__init__((host, port), AirphantRequestHandler)
        self.service = service
        self.quiet = quiet
        self.log_format = log_format

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` for an ephemeral port)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


class AirphantRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the service facade."""

    server: AirphantHTTPServer
    protocol_version = "HTTP/1.1"

    # -- routing ---------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle(self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._handle(self._route_post)

    def _route_get(self) -> tuple[int, Any]:
        service = self.server.service
        path = self._route_path() or "/"
        if path == "/healthz":
            return 200, service.health()
        if path == "/metrics":
            if not service.metrics.enabled:
                raise ServiceError(
                    404, "metrics_disabled", "metrics are disabled on this node"
                )
            return 200, _TextResponse(
                service.metrics.to_prometheus(), content_type=PROMETHEUS_CONTENT_TYPE
            )
        if path == "/cluster":
            if service.router is None:
                raise ServiceError(
                    404, "not_clustered", "this node has no peers configured"
                )
            return 200, service.router.describe()
        if path == "/traces":
            self._require_tracing()
            return 200, {"traces": service.tracer.store.list(limit=self._limit(50))}
        if path.startswith("/traces/"):
            self._require_tracing()
            trace_id = path[len("/traces/") :]
            root = service.tracer.store.get(trace_id)
            if root is None:
                raise ServiceError(
                    404, "trace_not_found", f"no retained trace {trace_id!r}"
                )
            return 200, explain_payload(root)
        if path == "/indexes":
            return 200, {"indexes": [info.to_dict() for info in service.list_indexes()]}
        if path.startswith("/indexes/") and path.endswith("/snapshots"):
            name = path[len("/indexes/") : -len("/snapshots")]
            return 200, {"snapshots": service.list_snapshots(name)}
        if path.startswith("/indexes/"):
            name = path[len("/indexes/") :]
            return 200, service.index_info(name).to_dict()
        raise ServiceError(404, "not_found", f"no route for GET {self.path}")

    def _route_post(self) -> tuple[int, Any]:
        service = self.server.service
        path = self._route_path()
        if path == "/search":
            body = self._read_json_body()
            try:
                request = SearchRequest.from_dict(body)
            except (ValueError, TypeError) as error:
                raise ServiceError(400, "bad_request", str(error)) from error
            # Propagated trace context (a router upstream) rides in on the
            # two trace headers; without them a trace id is pre-generated
            # so this request's access-log line still correlates.
            trace_id = self.headers.get(TRACE_ID_HEADER)
            parent_span_id = self.headers.get(PARENT_SPAN_HEADER)
            if trace_id is None and service.tracer.enabled:
                trace_id = new_id()
            self._trace_id = trace_id
            return 200, service.search(
                request, trace_id=trace_id, parent_span_id=parent_span_id
            ).to_dict()
        if path.startswith("/indexes/") and path.endswith("/build"):
            name = path[len("/indexes/") : -len("/build")]
            body = self._read_json_body()
            return 200, self._build(name, body).to_dict()
        if path.startswith("/indexes/") and path.endswith("/docs/delete"):
            name = path[len("/indexes/") : -len("/docs/delete")]
            body = self._read_json_body()
            refs = body.get("refs")
            if not isinstance(refs, list) or not refs:
                raise ServiceError(
                    400,
                    "bad_ingest_request",
                    "delete body needs a non-empty 'refs' list of "
                    "{blob, offset, length} objects",
                )
            unknown = set(body) - {"refs"}
            if unknown:
                raise ServiceError(
                    400,
                    "bad_ingest_request",
                    f"unknown delete field(s): {', '.join(sorted(unknown))}",
                )
            return 200, service.delete_documents(
                name, [_parse_ref(entry) for entry in refs]
            )
        if path.startswith("/indexes/") and path.endswith("/docs/update"):
            name = path[len("/indexes/") : -len("/docs/update")]
            body = self._read_json_body()
            text = body.get("document")
            if not isinstance(text, str):
                raise ServiceError(
                    400, "bad_ingest_request", "update body needs a 'document' string"
                )
            unknown = set(body) - {"ref", "document"}
            if unknown:
                raise ServiceError(
                    400,
                    "bad_ingest_request",
                    f"unknown update field(s): {', '.join(sorted(unknown))}",
                )
            return 200, service.update_document(name, _parse_ref(body.get("ref")), text)
        if path.startswith("/indexes/") and path.endswith("/docs"):
            name = path[len("/indexes/") : -len("/docs")]
            body = self._read_json_body()
            documents = body.get("documents")
            if (
                not isinstance(documents, list)
                or not documents
                or not all(isinstance(text, str) for text in documents)
            ):
                raise ServiceError(
                    400,
                    "bad_ingest_request",
                    "ingest body needs a non-empty 'documents' list of strings",
                )
            unknown = set(body) - {"documents"}
            if unknown:
                raise ServiceError(
                    400,
                    "bad_ingest_request",
                    f"unknown ingest field(s): {', '.join(sorted(unknown))}",
                )
            return 200, service.append_documents(name, documents)
        if path.startswith("/indexes/") and path.endswith("/flush"):
            name = path[len("/indexes/") : -len("/flush")]
            return 200, service.flush_index(name)
        if path.startswith("/indexes/") and path.endswith("/compact"):
            name = path[len("/indexes/") : -len("/compact")]
            return 200, service.compact_index(name)
        if path.startswith("/indexes/") and path.endswith("/snapshots"):
            name = path[len("/indexes/") : -len("/snapshots")]
            body = self._read_json_body()
            snapshot = body.get("snapshot")
            if not isinstance(snapshot, str) or not snapshot:
                raise ServiceError(
                    400, "bad_snapshot_name", "snapshot body needs a 'snapshot' name"
                )
            unknown = set(body) - {"snapshot"}
            if unknown:
                raise ServiceError(
                    400,
                    "bad_snapshot_name",
                    f"unknown snapshot field(s): {', '.join(sorted(unknown))}",
                )
            return 200, service.create_snapshot(name, snapshot)
        if path.startswith("/indexes/") and path.endswith("/restore"):
            name, snapshot = _split_snapshot_path(path, "/restore")
            return 200, service.restore_snapshot(name, snapshot)
        if path.startswith("/indexes/") and path.endswith("/delete"):
            name, snapshot = _split_snapshot_path(path, "/delete")
            return 200, service.delete_snapshot(name, snapshot)
        raise ServiceError(404, "not_found", f"no route for POST {self.path}")

    def _build(self, name: str, body: Mapping[str, Any]):
        blobs = body.get("blobs")
        if not isinstance(blobs, list) or not all(isinstance(blob, str) for blob in blobs):
            raise ServiceError(
                400, "bad_build_request", "build body needs a 'blobs' list of blob names"
            )
        overrides = {
            key: body[key] for key in _BUILD_CONFIG_FIELDS if body.get(key) is not None
        }
        unknown = (
            set(body)
            - set(_BUILD_CONFIG_FIELDS)
            - set(_BUILD_SHARD_FIELDS)
            - {"blobs", "format"}
        )
        if unknown:
            raise ServiceError(
                400, "bad_build_request", f"unknown build field(s): {', '.join(sorted(unknown))}"
            )
        # Explicit nulls mean "unset", matching the sketch-config fields.
        num_shards = body.get("num_shards")
        if num_shards is None:
            num_shards = 1
        if not isinstance(num_shards, int) or isinstance(num_shards, bool):
            raise ServiceError(400, "bad_build_request", "num_shards must be an integer")
        partitioner = body.get("partitioner")
        if partitioner is None:
            partitioner = "hash"
        if not isinstance(partitioner, str):
            raise ServiceError(400, "bad_build_request", "partitioner must be a string")
        format_name = body.get("format")
        format_version = None
        if format_name is not None:
            if format_name not in _BUILD_FORMATS:
                raise ServiceError(
                    400,
                    "bad_build_request",
                    f"unknown format {format_name!r}; expected one of "
                    f"{', '.join(sorted(_BUILD_FORMATS))}",
                )
            format_version = _BUILD_FORMATS[format_name]
        try:
            config = SketchConfig(**overrides) if overrides else None
        except (ValueError, TypeError) as error:
            raise ServiceError(400, "bad_build_request", str(error)) from error
        return self.server.service.build_index(
            name,
            blobs,
            sketch_config=config,
            num_shards=num_shards,
            partitioner=partitioner,
            format_version=format_version,
        )

    # -- plumbing --------------------------------------------------------------------

    def _route_path(self) -> str:
        """The request path without query string or trailing slash."""
        return urlsplit(self.path).path.rstrip("/")

    def _require_tracing(self) -> None:
        if not self.server.service.tracer.enabled:
            raise ServiceError(
                404, "tracing_disabled", "tracing is disabled on this node"
            )

    def _limit(self, default: int) -> int:
        """The ``?limit=N`` query parameter (400 on junk)."""
        values = parse_qs(urlsplit(self.path).query).get("limit")
        if not values:
            return default
        try:
            limit = int(values[-1])
        except ValueError as error:
            raise ServiceError(400, "bad_request", f"invalid limit: {values[-1]!r}") from error
        if limit <= 0:
            raise ServiceError(400, "bad_request", "limit must be positive")
        return limit

    def _handle(self, route) -> None:
        self._body_consumed = 0
        self._trace_id: str | None = None
        self._last_status = 0
        started = time.perf_counter()
        try:
            status, payload = route()
        except ServiceError as error:
            self._send_json(error.status, error.info.to_dict())
        except Exception as error:  # pragma: no cover - defensive last resort
            info = ErrorInfo(status=500, error="internal_error", message=str(error))
            self._send_json(500, info.to_dict())
        else:
            if isinstance(payload, _TextResponse):
                self._send_bytes(
                    status, payload.text.encode("utf-8"), payload.content_type
                )
            else:
                self._send_json(status, payload)
        if self.server.log_format == "json" and not self.server.quiet:
            # One structured line per request, replacing the stdlib's
            # free-text log_message output (suppressed below).
            line: dict[str, Any] = {
                "event": "request",
                "method": self.command,
                "path": self.path,
                "status": self._last_status,
                "duration_ms": round((time.perf_counter() - started) * 1000.0, 3),
            }
            if self._trace_id is not None:
                line["trace_id"] = self._trace_id
            sys.stderr.write(json.dumps(line) + "\n")

    def _read_json_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length > 0 else b""
        self._body_consumed += len(raw)
        if not raw:
            raise ServiceError(400, "bad_request", "request body must be a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServiceError(400, "bad_request", f"invalid JSON body: {error}") from error
        if not isinstance(body, dict):
            raise ServiceError(400, "bad_request", "request body must be a JSON object")
        return body

    def _send_json(self, status: int, payload: Any) -> None:
        self._send_bytes(status, json.dumps(payload).encode("utf-8"), "application/json")

    def _send_bytes(self, status: int, data: bytes, content_type: str) -> None:
        # Drain any unread request body first: HTTP/1.1 keep-alive would
        # otherwise parse the leftover bytes as the next request line.
        remaining = int(self.headers.get("Content-Length") or 0) - getattr(
            self, "_body_consumed", 0
        )
        while remaining > 0:
            chunk = self.rfile.read(min(remaining, 65536))
            if not chunk:
                break
            remaining -= len(chunk)
        self._last_status = status
        try:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except ConnectionError:
            # The client hung up (e.g. a router abandoned us after its
            # per-shard timeout and failed over to a replica).  There is
            # nobody left to answer; don't let the threading server spam
            # a traceback for a normal disconnect.
            self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # The JSON access line from _handle replaces these free-text lines.
        if not self.server.quiet and self.server.log_format != "json":
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )


def create_server(
    service: AirphantService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
    log_format: str = "text",
) -> AirphantHTTPServer:
    """Bind (but do not start) an HTTP server for ``service``."""
    return AirphantHTTPServer(
        service, host=host, port=port, quiet=quiet, log_format=log_format
    )


def serve_forever(
    service: AirphantService,
    host: str = "127.0.0.1",
    port: int = 8080,
    log_format: str = "text",
) -> None:
    """Run the HTTP server until interrupted (the ``airphant serve`` loop)."""
    server = create_server(
        service, host=host, port=port, quiet=False, log_format=log_format
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
