"""The Airphant service facade: one entry point for the whole query side.

:class:`AirphantService` is what a long-lived query node runs (paper
Figure 3, right half): it owns an :class:`~repro.service.catalog.IndexCatalog`
of named indexes on one object store, shares a single
:class:`~repro.service.config.ServiceConfig` across them, and answers typed
:class:`~repro.service.api.SearchRequest` objects in any query mode —
keyword, Boolean, or regex, each with optional top-K.  The CLI, the HTTP
server, and the examples all drive this facade instead of constructing
searchers by hand.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from repro.core.config import SketchConfig
from repro.index.builder import AirphantBuilder
from repro.parsing.documents import Posting
from repro.search.multi import MultiIndexSearcher
from repro.search.regexsearch import RegexSearcher
from repro.search.results import LatencyBreakdown, SearchResult
from repro.service.api import IndexInfo, SearchRequest, SearchResponse, ServiceError
from repro.service.catalog import IndexCatalog
from repro.service.config import ServiceConfig
from repro.storage.base import ObjectStore


class AirphantService:
    """Serves keyword / Boolean / regex queries over cataloged indexes."""

    def __init__(self, store: ObjectStore, config: ServiceConfig | None = None) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._catalog = IndexCatalog(store, self._config)

    @property
    def store(self) -> ObjectStore:
        """The object store backing every served index."""
        return self._catalog.store

    @property
    def config(self) -> ServiceConfig:
        """The shared query-side configuration."""
        return self._config

    @property
    def catalog(self) -> IndexCatalog:
        """The catalog of named indexes."""
        return self._catalog

    def close(self) -> None:
        """Close every opened searcher, releasing fetcher pools and caches.

        The service stays usable: the next query simply reopens its index
        (and with it a fresh long-lived fetcher pool).
        """
        self._catalog.close()

    def __enter__(self) -> "AirphantService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- health & inspection ---------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness payload: status, catalog size, and active configuration."""
        names = self._catalog.names()
        return {
            "status": "ok",
            "indexes": len(names),
            "open_indexes": sum(1 for name in names if self._catalog.is_open(name)),
            "config": self._config.to_dict(),
        }

    def list_indexes(self) -> list[IndexInfo]:
        """Describe every index the service can answer queries against."""
        return self._catalog.list_infos()

    def index_info(self, name: str) -> IndexInfo:
        """Describe one index; raises :class:`ServiceError` (404) if unknown."""
        try:
            return self._catalog.info(name)
        except KeyError:
            raise ServiceError(404, "index_not_found", f"no index named {name!r}") from None

    # -- querying ---------------------------------------------------------------------

    def search(self, request: SearchRequest) -> SearchResponse:
        """Answer one typed search request (the service's main entry point)."""
        return SearchResponse.from_result(request, self.execute(request))

    def execute(self, request: SearchRequest) -> SearchResult:
        """Dispatch ``request`` to the right query mode, returning the raw result.

        Most callers want :meth:`search`; this variant serves those (like the
        CLI) that render document text straight from the
        :class:`~repro.search.results.SearchResult`.
        """
        searcher = self._open(request.index)
        top_k = request.top_k if request.top_k is not None else self._config.default_top_k
        try:
            if request.mode == "boolean":
                return searcher.search_boolean(request.query, top_k=top_k)
            if request.mode == "regex":
                regex = RegexSearcher(
                    searcher, min_literal_length=self._config.min_literal_length
                )
                return regex.search(request.query, top_k=top_k)
            return searcher.search(request.query, top_k=top_k)
        except (ValueError, re.error) as error:
            # Malformed Boolean syntax, bad regex, or a regex with no literal
            # words to filter on — the request, not the service, is at fault.
            raise ServiceError(400, "bad_query", str(error)) from error

    def lookup_postings(self, index: str, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup only (the paper's Figure 14 operation)."""
        return self._open(index).lookup_postings(word)

    def searcher(self, index: str) -> MultiIndexSearcher:
        """The underlying searcher, for callers needing raw :class:`SearchResult`.

        Raises :class:`ServiceError` (404) if the index does not exist.
        """
        return self._open(index)

    def _open(self, index: str) -> MultiIndexSearcher:
        try:
            return self._catalog.open(index)
        except KeyError:
            raise ServiceError(404, "index_not_found", f"no index named {index!r}") from None

    # -- building ---------------------------------------------------------------------

    def build_index(
        self,
        name: str,
        blobs: Sequence[str],
        sketch_config: SketchConfig | None = None,
        num_shards: int = 1,
        partitioner: str = "hash",
    ) -> IndexInfo:
        """Build (or rebuild) index ``name`` over the given corpus blobs.

        ``num_shards > 1`` builds a sharded index: the corpus is partitioned
        (``"hash"`` or ``"round-robin"``), per-shard sub-indexes build in
        parallel, and queries later fan out across the shards in one batch.
        Any previously cached searcher for ``name`` is invalidated so the
        next query reopens the fresh header(s).
        """
        if not name or not name.strip("/") or "/delta-" in name or "/shard-" in name:
            raise ServiceError(400, "bad_index_name", f"invalid index name {name!r}")
        blobs = list(blobs)
        if not blobs:
            raise ServiceError(400, "bad_build_request", "build needs at least one corpus blob")
        missing = [blob for blob in blobs if not self.store.exists(blob)]
        if missing:
            raise ServiceError(
                404, "blob_not_found", f"corpus blob(s) not found: {', '.join(missing)}"
            )
        try:
            builder = AirphantBuilder(
                self.store,
                config=sketch_config,
                tokenizer=self._config.make_tokenizer(),
                num_shards=num_shards,
                partitioner=partitioner,
            )
        except ValueError as error:
            # Bad num_shards / partitioner — the request is at fault.
            raise ServiceError(400, "bad_build_request", str(error)) from error
        # The builder removes any stale blobs from a previous layout of this
        # name (e.g. resharding, or sharded -> single-shard), so a rebuild is
        # authoritative regardless of what was there before.
        builder.build_from_blobs(blobs, index_name=name, corpus_name=name)
        self._catalog.invalidate(name)
        return self.index_info(name)
