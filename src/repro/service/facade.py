"""The Airphant service facade: one entry point for the whole query side.

:class:`AirphantService` is what a long-lived query node runs (paper
Figure 3, right half): it owns an :class:`~repro.service.catalog.IndexCatalog`
of named indexes on one object store, shares a single
:class:`~repro.service.config.ServiceConfig` across them, and answers typed
:class:`~repro.service.api.SearchRequest` objects in any query mode —
keyword, Boolean, or regex, each with optional top-K.  The CLI, the HTTP
server, and the examples all drive this facade instead of constructing
searchers by hand.
"""

from __future__ import annotations

import dataclasses
import re
import time
import weakref
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

from repro.cluster.router import QueryRouter
from repro.core.config import SketchConfig
from repro.observability import NULL_REGISTRY, MetricsRegistry, get_registry
from repro.observability.tracing import Tracer, current_span, explain_payload
from repro.index.builder import AirphantBuilder
from repro.index.stats import RankingUnsupportedError
from repro.index.updates import AppendOnlyIndexManager, SnapshotRestoreError
from repro.ingest.live import IngestCoordinator, IngestOverloadedError, LiveSearcher
from repro.ingest.wal import WriteAheadLog
from repro.parsing.documents import Posting
from repro.search.multi import MultiIndexSearcher
from repro.search.ranking import DEFAULT_RANKED_K
from repro.search.regexsearch import RegexSearcher
from repro.search.results import LatencyBreakdown, SearchResult
from repro.search.sharded import ShardedSearcher
from repro.search.visibility import apply_tombstones
from repro.service.api import IndexInfo, SearchRequest, SearchResponse, ServiceError
from repro.service.catalog import IndexCatalog
from repro.service.config import ServiceConfig
from repro.storage.base import (
    BlobNotFoundError,
    ObjectStore,
    ReadOnlyStoreError,
    StoreAccessError,
    TransientStoreError,
)
from repro.storage.registry import open_store


class AirphantService:
    """Serves keyword / Boolean / regex queries over cataloged indexes."""

    def __init__(
        self,
        store: ObjectStore,
        config: ServiceConfig | None = None,
        store_uri: str | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._config = config if config is not None else ServiceConfig()
        self._catalog = IndexCatalog(store, self._config)
        #: Recorded for /healthz; informational only (the store is already
        #: resolved).  Set by from_uri and by the CLI's --store path.
        self._store_uri = store_uri
        # One registry for the whole node: the facade's own query accounting
        # lands here, and the storage layers underneath default to the same
        # process-wide registry, so /metrics shows one coherent picture.
        if metrics is not None:
            self._metrics = metrics
        else:
            self._metrics = get_registry() if self._config.metrics_enabled else NULL_REGISTRY
        self._queries_metric = self._metrics.counter(
            "airphant_queries_total",
            "Queries answered, by query mode and index",
            label_names=("mode", "index"),
        )
        self._query_seconds_metric = self._metrics.histogram(
            "airphant_query_seconds",
            "End-to-end wall-clock query latency, by query mode and index",
            label_names=("mode", "index"),
        )
        self._query_errors_metric = self._metrics.counter(
            "airphant_query_errors_total",
            "Requests rejected with a typed service error, by error code",
            label_names=("error",),
        )
        self._builds_metric = self._metrics.counter(
            "airphant_builds_total", "Index builds completed through the facade"
        )
        self._build_seconds_metric = self._metrics.histogram(
            "airphant_build_seconds",
            "Wall-clock latency of facade index builds",
            # Builds run seconds-to-minutes, far beyond the latency ladder.
            buckets=(0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0),
        )
        # Live occupancy gauges: bound to callables so /metrics and /healthz
        # always report the current value with no update hooks.  On the
        # shared process registry the most recently constructed service
        # answers (set_function re-binds), matching the one-node-per-process
        # deployment every other facade metric assumes.  The binding is weak:
        # a registry-held strong reference would pin the service (and its
        # fetcher threads) for the life of the process.
        service_ref = weakref.ref(self)
        self._metrics.gauge(
            "airphant_open_indexes",
            "Indexes whose searcher (headers in memory) is currently open",
        ).set_function(
            lambda: s._catalog.open_count() if (s := service_ref()) is not None else 0
        )
        self._metrics.gauge(
            "airphant_read_cache_bytes_used",
            "Bytes currently held by read-pipeline block caches, all open indexes",
        ).set_function(
            lambda: s._read_cache_bytes() if (s := service_ref()) is not None else 0
        )
        # Request-scoped tracing: with tracing enabled every query builds a
        # span tree (explain / propagated / slow / sampled trees are kept in
        # the ring served by GET /traces); disabled, the instrumentation
        # collapses to one contextvar read per site.
        self._tracer = Tracer(
            enabled=self._config.tracing_enabled,
            sample_rate=self._config.trace_sample_rate,
            capacity=self._config.trace_buffer,
            slow_query_ms=self._config.slow_query_ms,
        )
        # The live write path: per-index ingesters (WAL + memtable) plus the
        # background flush/compaction worker.
        self._ingest = IngestCoordinator(
            self.store, self._config, self._metrics, self._catalog.invalidate
        )
        # The scale-out query tier: with peers configured this node doubles
        # as a router — whole queries scatter over the peers' shard subsets
        # (including, usually, this node itself via its own URL) and merge;
        # requests that already pin shards are answered locally.
        self._router: QueryRouter | None = None
        if self._config.peers:
            self._router = QueryRouter(
                self._config.peers,
                replication_factor=self._config.replication_factor,
                shard_timeout_s=self._config.shard_timeout_s,
                node_hedge_ms=self._config.node_hedge_ms,
                node_retries=self._config.node_retries,
                probe_interval_s=self._config.probe_interval_s,
                metrics=self._metrics,
            )

    def _read_cache_bytes(self) -> int:
        """Current block-cache occupancy summed over every open searcher."""
        return sum(
            member.pipeline.cached_bytes
            for multi in self._catalog.open_searchers()
            for member in multi.searchers
        )

    @contextmanager
    def _store_errors(self) -> Iterator[None]:
        """Translate storage failures into the service's typed errors.

        One definition for every endpoint: transient failures (including
        exhausted retries) become ``503 store_unavailable``; definitive
        access denials become ``403 store_access_denied``; write refusals
        (builds or ingest against e.g. a static http:// export) become
        ``400 store_read_only``.
        """
        try:
            yield
        except TransientStoreError as error:
            raise ServiceError(503, "store_unavailable", str(error)) from error
        except StoreAccessError as error:
            raise ServiceError(403, "store_access_denied", str(error)) from error
        except ReadOnlyStoreError as error:
            raise ServiceError(400, "store_read_only", str(error)) from error

    @classmethod
    def from_uri(cls, uri: str, config: ServiceConfig | None = None) -> "AirphantService":
        """Open a service over the backend a store URI names.

        The URI is resolved through the storage registry (``mem://``,
        ``file://``, ``sim://``, ``http(s)://``, ``s3://``; see
        :func:`repro.storage.registry.open_store`) and wrapped with the
        config's resilience policy (retries / timeout / hedged reads) via
        :meth:`ServiceConfig.wrap_store`.  The CLI's ``--store`` flag builds
        the same registry + wrap pipeline (plus its ``--simulate-latency``
        layer) and passes the URI through the ``store_uri`` parameter, so
        ``/healthz`` reports it either way.

        Raises :class:`~repro.storage.registry.StoreURIError` on unknown
        schemes or malformed URIs.
        """
        config = config if config is not None else ServiceConfig()
        return cls(config.wrap_store(open_store(uri)), config, store_uri=uri)

    @property
    def store_uri(self) -> str | None:
        """The URI this service was opened from (``None`` for direct stores)."""
        return self._store_uri

    @property
    def store(self) -> ObjectStore:
        """The object store backing every served index."""
        return self._catalog.store

    @property
    def config(self) -> ServiceConfig:
        """The shared query-side configuration."""
        return self._config

    @property
    def metrics(self) -> MetricsRegistry:
        """The registry this node's request metrics land in.

        The process-wide registry unless the constructor was handed a
        private one; a permanently disabled registry when the config says
        ``metrics_enabled=False``.
        """
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The per-service tracer (disabled when the config says so)."""
        return self._tracer

    @property
    def catalog(self) -> IndexCatalog:
        """The catalog of named indexes."""
        return self._catalog

    def close(self) -> None:
        """Close every opened searcher, releasing fetcher pools and caches.

        First stops the background ingest worker and drains any in-flight
        flush/compaction (unflushed memtable documents stay durable in their
        WAL segments and replay on the next open).  Then closes each
        catalog-opened searcher (which shuts down its — possibly sharded —
        members' pipelines and fetcher thread pools) *and* the store's own
        lazy ``read_many`` pipeline, so no worker thread outlives the
        service.  The service stays usable: the next query simply reopens
        its index (and with it a fresh long-lived fetcher pool).
        """
        if self._router is not None:
            self._router.close()
        self._ingest.close()
        self._catalog.close()
        self.store.close()

    def __enter__(self) -> "AirphantService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- health & inspection ---------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Liveness payload: status, catalog size, store, and configuration.

        Always answers (that is the point of a liveness probe): when the
        backing store cannot even be listed, the status degrades to
        ``"degraded"`` with the storage error attached instead of failing
        the probe outright.
        """
        store_info: dict[str, Any] = {"type": type(self.store).__name__}
        if self._store_uri is not None:
            store_info["uri"] = self._store_uri
        payload: dict[str, Any] = {
            "status": "ok",
            "store": store_info,
            "config": self._config.to_dict(),
        }
        if self._metrics.enabled:
            # Compact totals + latency summaries; the full per-label series
            # live on GET /metrics (Prometheus exposition).
            payload["metrics"] = self._metrics.summary()
        # Live write-path state: memtable occupancy, unflushed WAL segments,
        # stacked deltas, worker liveness.  Degrades like the catalog block:
        # a live index's WAL-manifest read hitting a down store must not
        # fail the liveness probe.
        try:
            payload["ingest"] = self._ingest.summary()
        except (TransientStoreError, StoreAccessError, BlobNotFoundError) as error:
            payload["status"] = "degraded"
            payload["ingest"] = {"error": str(error)}
        # The scale-out tier's view: peer count, live / marked-down nodes,
        # last-probe ages.  Same contract as the ingest block — the probe
        # must answer even when the cluster state itself misbehaves.
        if self._router is None:
            payload["cluster"] = {"enabled": False, "peers": 0}
        else:
            try:
                payload["cluster"] = self._router.summary()
            except Exception as error:  # noqa: BLE001 - liveness must answer
                payload["status"] = "degraded"
                payload["cluster"] = {"enabled": True, "error": str(error)}
        try:
            names = self._catalog.names()
        except (TransientStoreError, StoreAccessError, BlobNotFoundError) as error:
            # BlobNotFoundError here means the *container* itself is missing
            # (e.g. an s3:// URI naming a nonexistent bucket answers 404 on
            # the listing) — degraded, not a crash.
            payload["status"] = "degraded"
            payload["store_error"] = str(error)
        else:
            payload["indexes"] = len(names)
            payload["open_indexes"] = sum(
                1 for name in names if self._catalog.is_open(name)
            )
        return payload

    def list_indexes(self) -> list[IndexInfo]:
        """Describe every index the service can answer queries against."""
        try:
            with self._store_errors():
                return self._catalog.list_infos()
        except BlobNotFoundError as error:
            # The store's container itself is missing (nonexistent bucket):
            # a typed 404, not an internal error.
            raise ServiceError(404, "store_not_found", str(error)) from None

    def index_info(self, name: str) -> IndexInfo:
        """Describe one index; raises :class:`ServiceError` (404) if unknown."""
        try:
            with self._store_errors():
                return self._catalog.info(name)
        except KeyError:
            raise ServiceError(404, "index_not_found", f"no index named {name!r}") from None

    # -- querying ---------------------------------------------------------------------

    @property
    def router(self) -> QueryRouter | None:
        """The cluster query router (``None`` when no peers are configured)."""
        return self._router

    def search(
        self,
        request: SearchRequest,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> SearchResponse:
        """Answer one typed search request (the service's main entry point).

        On a clustered node a whole-index request scatter-gathers over the
        peers; a request already pinned to shard ordinals — the routed
        sub-requests themselves — is always answered locally, which is what
        keeps routing from recursing.

        ``trace_id``/``parent_span_id`` carry propagated trace context from
        the HTTP layer (a router upstream asked this node to trace its share
        of a query).  The span tree is attached to the response — for the
        client on ``explain`` requests, for the router to graft on
        propagated ones; otherwise tracing stays internal (the ``/traces``
        ring and the slow-query log).
        """
        if request.mode == "topk_bm25" and request.top_k is None:
            # Materialize the default k into the request *before* any
            # routing: the scattered sub-requests and the router's global
            # truncation must agree on the same explicit k.
            request = dataclasses.replace(request, top_k=self._ranked_k(None))
        # A parent span id marks a routed sub-request (the caller grafts the
        # returned tree); a bare trace_id only *names* the trace — the HTTP
        # layer pre-generates one so access-log lines correlate — and must
        # not force retention or a trace-bearing response.
        propagated = parent_span_id is not None
        handle = self._tracer.begin(
            "query",
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            force=request.explain or propagated,
            index=request.index,
            mode=request.mode,
            query=request.query,
        )
        try:
            if self._router is not None and request.shards is None:
                response = self._router.route(request)
            else:
                response = SearchResponse.from_result(request, self.execute(request))
        except ServiceError as error:
            if handle is not None:
                handle.root.set(error=error.info.error)
                handle.finish()
            raise
        except Exception:
            if handle is not None:
                handle.root.set(error="internal_error")
                handle.finish()
            raise
        if handle is not None:
            root = handle.finish()
            if request.explain or propagated:
                response = dataclasses.replace(
                    response, trace=explain_payload(root)
                )
        return response

    def _ranked_k(self, top_k: int | None) -> int:
        """The effective ranked k: explicit, else configured, else 10."""
        if top_k is not None:
            return top_k
        if self._config.default_top_k is not None:
            return self._config.default_top_k
        return DEFAULT_RANKED_K

    def execute(self, request: SearchRequest) -> SearchResult:
        """Dispatch ``request`` to the right query mode, returning the raw result.

        Most callers want :meth:`search`; this variant serves those (like the
        CLI) that render document text straight from the
        :class:`~repro.search.results.SearchResult`.  Every call is
        accounted: answered queries by mode with end-to-end wall-clock
        latency, rejected ones by typed error code.
        """
        started = time.perf_counter()
        # Callers arriving through search() already run inside that root
        # span; direct callers (the CLI's document-rendering path, library
        # embedders) get their own so sampling and the slow-query log still
        # see every query exactly once.
        handle = (
            self._tracer.begin(
                "query", index=request.index, mode=request.mode, query=request.query
            )
            if current_span() is None
            else None
        )
        try:
            result = self._execute(request)
        except ServiceError as error:
            self._query_errors_metric.inc(error=error.info.error)
            if handle is not None:
                handle.root.set(error=error.info.error)
                handle.finish()
            raise
        except Exception:
            # Anything without a typed code (a corrupted index blob, a
            # programming error) surfaces as HTTP 500 — count it under the
            # same label so the worst outage class is never a flat line.
            self._query_errors_metric.inc(error="internal_error")
            if handle is not None:
                handle.root.set(error="internal_error")
                handle.finish()
            raise
        self._queries_metric.inc(mode=request.mode, index=request.index)
        self._query_seconds_metric.observe(
            time.perf_counter() - started, mode=request.mode, index=request.index
        )
        if handle is not None:
            handle.finish()
        return result

    def _execute(self, request: SearchRequest) -> SearchResult:
        searcher = self._open(request.index, shards=request.shards)
        top_k = request.top_k if request.top_k is not None else self._config.default_top_k
        try:
            # _store_errors: the backend (not the request) failing — retries,
            # if configured, are already exhausted by the time it raises.
            with self._store_errors():
                if request.mode == "boolean":
                    return searcher.search_boolean(request.query, top_k=top_k)
                if request.mode == "regex":
                    regex = RegexSearcher(
                        searcher, min_literal_length=self._config.min_literal_length
                    )
                    return regex.search(request.query, top_k=top_k)
                if request.mode == "topk_bm25":
                    return searcher.search_topk(
                        request.query,
                        k=self._ranked_k(request.top_k),
                        weights=request.weight_map,
                    )
                return searcher.search(request.query, top_k=top_k)
        except RankingUnsupportedError as error:
            # The index predates ranked retrieval (no stats blob): a typed
            # rejection telling the caller to rebuild, not a crash.
            raise ServiceError(400, "ranking_unavailable", str(error)) from error
        except (ValueError, re.error) as error:
            # Malformed Boolean syntax, bad regex, or a regex with no literal
            # words to filter on — the request, not the service, is at fault.
            raise ServiceError(400, "bad_query", str(error)) from error

    def lookup_postings(self, index: str, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup only (the paper's Figure 14 operation)."""
        started = time.perf_counter()
        try:
            with self._store_errors():
                outcome = self._open(index).lookup_postings(word)
        except ServiceError as error:
            self._query_errors_metric.inc(error=error.info.error)
            raise
        except Exception:
            self._query_errors_metric.inc(error="internal_error")
            raise
        self._queries_metric.inc(mode="lookup", index=index)
        self._query_seconds_metric.observe(
            time.perf_counter() - started, mode="lookup", index=index
        )
        return outcome

    def searcher(self, index: str) -> MultiIndexSearcher:
        """The underlying searcher, for callers needing raw :class:`SearchResult`.

        Raises :class:`ServiceError` (404) if the index does not exist.
        """
        return self._open(index)

    def _open(self, index: str, shards: Sequence[int] | None = None) -> MultiIndexSearcher:
        try:
            # _store_errors: header/manifest reads failing before open.
            with self._store_errors():
                self._catalog.open(index)
        except KeyError:
            raise ServiceError(404, "index_not_found", f"no index named {index!r}") from None
        if shards is not None:
            # Validate eagerly (typed 400, not a silent empty answer): every
            # requested ordinal must exist somewhere among the members.
            num_shards = max(
                (member.num_shards for member in self._catalog.open(index).searchers),
                default=1,
            )
            invalid = [ordinal for ordinal in shards if ordinal >= num_shards]
            if invalid:
                raise ServiceError(
                    400,
                    "bad_shards",
                    f"index {index!r} has {num_shards} shard(s); "
                    f"ordinal(s) {invalid} do not exist",
                )
        # The combined live view: the catalog's (cached) persisted members —
        # re-resolved per call, so flush/compaction invalidations take effect
        # on the next query — plus one exact searcher per live memtable.
        # For an index with no write state this degenerates to exactly the
        # catalog searcher's members.
        return LiveSearcher(lambda: self._live_members(index, shards))

    def _live_members(self, index: str, shards: Sequence[int] | None = None) -> list[Any]:
        members = [*self._catalog.open(index).searchers, *self._ingest.members(index)]
        if shards is not None:
            # Shard-subset execution (the scatter half of the cluster tier):
            # a sharded member answers with a view over the requested
            # ordinals it actually holds; everything unsharded — plain
            # indexes, deltas, live memtables — rides with ordinal 0.
            # Disjoint ordinal subsets across nodes therefore partition the
            # full member set exactly: each shard is answered once, and the
            # write-path members exactly once (by whichever node owns
            # ordinal 0).
            restricted: list[Any] = []
            for member in members:
                if isinstance(member, ShardedSearcher):
                    held = [o for o in shards if o < member.num_shards]
                    if held:
                        restricted.append(member.restrict(held))
                elif 0 in shards:
                    restricted.append(member)
            members = restricted
        # Pending deletes filter *after* shard restriction, so every route a
        # condemned document could surface through — local, shard-pinned, or
        # cluster-scattered — is covered by the same wrapper.  Memtable
        # members carry no condemned documents (deletes are physical there),
        # but wrapping them too is harmless and keeps this one line.
        return apply_tombstones(members, self._ingest.tombstone_refs(index))

    # -- live ingestion ----------------------------------------------------------------

    @property
    def ingest(self) -> IngestCoordinator:
        """The live-ingestion coordinator (per-index WAL + memtable state)."""
        return self._ingest

    def append_documents(self, index: str, documents: Sequence[str]) -> dict[str, Any]:
        """Durably append documents to a live index; searchable on return.

        The batch is committed to a WAL segment first and then becomes
        visible through the in-memory memtable — keyword, Boolean, and regex
        queries all see the documents before any flush.  Raises
        :class:`ServiceError` 404 for unknown indexes and 400 for payloads
        the line-delimited WAL format cannot hold.
        """
        if not documents:
            raise ServiceError(400, "bad_ingest_request", "append needs at least one document")
        with self._store_errors():
            self._require_index(index)
            live = self._ingest.live(index, create=True)
            try:
                return live.append(documents)
            except IngestOverloadedError as error:
                raise ServiceError(429, "ingest_overloaded", str(error)) from error
            except ValueError as error:
                raise ServiceError(400, "bad_ingest_request", str(error)) from error

    def delete_documents(
        self, index: str, refs: Sequence[Posting]
    ) -> dict[str, Any]:
        """Durably delete documents by reference; invisible on return.

        The deletes are committed as a WAL tombstone record, applied
        physically in the memtable tier, filtered at query time everywhere
        else, and purged for good at the next compaction.  Unknown refs are
        accepted (deletes are idempotent).  Raises :class:`ServiceError` 404
        for unknown indexes and 400 for an empty batch.
        """
        if not refs:
            raise ServiceError(
                400, "bad_ingest_request", "delete needs at least one document reference"
            )
        with self._store_errors():
            self._require_index(index)
            live = self._ingest.live(index, create=True)
            try:
                return live.delete(refs)
            except ValueError as error:
                raise ServiceError(400, "bad_ingest_request", str(error)) from error

    def update_document(self, index: str, ref: Posting, text: str) -> dict[str, Any]:
        """Durably replace one document; read-your-writes on return.

        Atomic: one WAL manifest write commits the replacement segment and
        the old reference's tombstone together, so no query sees both (or
        neither) version.  Raises :class:`ServiceError` 404 for unknown
        indexes, 400 for text the WAL format cannot hold, and 429 under
        memtable backpressure.
        """
        with self._store_errors():
            self._require_index(index)
            live = self._ingest.live(index, create=True)
            try:
                return live.update(ref, text)
            except IngestOverloadedError as error:
                raise ServiceError(429, "ingest_overloaded", str(error)) from error
            except ValueError as error:
                raise ServiceError(400, "bad_ingest_request", str(error)) from error

    def _require_index(self, index: str) -> None:
        """404 unless ``index`` exists — without store probes when avoidable.

        The write path runs this per batch: an already-opened searcher or
        registered live index answers from memory; only the first touch of
        an unknown name pays the catalog's existence round trips.
        """
        if self._catalog.is_open(index) or self._ingest.live(index) is not None:
            return
        if not self._catalog.contains(index):
            raise ServiceError(404, "index_not_found", f"no index named {index!r}")

    def flush_index(self, index: str) -> dict[str, Any]:
        """Fold ``index``'s memtable into a delta now (no-op when empty)."""
        with self._store_errors():
            live = self._ingest.live(index)
            if live is None:
                self._require_index(index)
                outcome = None
            else:
                outcome = live.flush()
        if outcome is None:
            return {"index": index, "flushed": 0, "delta": None}
        return outcome

    def compact_index(self, index: str) -> dict[str, Any]:
        """Flush, then fold every delta into a new base generation now.

        Answers ``{"compacted": false}`` when there is nothing to fold.
        """
        with self._store_errors():
            live = self._ingest.live(index)
            if live is None:
                self._require_index(index)
                # No write state this process and nothing replayable: only
                # pre-existing deltas (e.g. built offline via the manager)
                # would justify registering a live index + worker here.
                manifest = AppendOnlyIndexManager(self.store, base_index=index).manifest()
                if not manifest.delta_indexes:
                    return {"index": index, "compacted": False, "deltas_folded": 0}
                live = self._ingest.live(index, create=True)
            outcome = live.compact()
        if outcome is None:
            return {"index": index, "compacted": False, "deltas_folded": 0}
        return {"compacted": True, **outcome}

    # -- snapshots ---------------------------------------------------------------------

    def _manager(self, index: str) -> AppendOnlyIndexManager:
        return AppendOnlyIndexManager(
            self.store, base_index=index, tokenizer=self._config.make_tokenizer()
        )

    def create_snapshot(self, index: str, snapshot: str) -> dict[str, Any]:
        """Create (or overwrite) a named point-in-time snapshot of ``index``.

        The memtable is flushed first, so the frozen manifest covers every
        acknowledged write; pending deletes ride along as the snapshot's
        tombstone set.  Raises :class:`ServiceError` 404 for unknown indexes
        and 400 for invalid snapshot names.
        """
        with self._store_errors():
            self._require_index(index)
            live = self._ingest.live(index)
            tombstones: Sequence[Posting] = ()
            if live is not None:
                live.flush()
                tombstones = sorted(live.tombstone_refs())
            try:
                info = self._manager(index).create_snapshot(snapshot, tombstones)
            except ValueError as error:
                raise ServiceError(400, "bad_snapshot_name", str(error)) from error
        return {
            "index": index,
            "snapshot": info.snapshot,
            "created_at": info.created_at,
            "generation": info.manifest.generation,
            "delta_indexes": len(info.manifest.delta_indexes),
            "tombstones": len(info.tombstones),
        }

    def list_snapshots(self, index: str) -> list[dict[str, Any]]:
        """Describe every snapshot of ``index`` (404 for unknown indexes)."""
        with self._store_errors():
            self._require_index(index)
            infos = self._manager(index).list_snapshots()
        return [
            {
                "snapshot": info.snapshot,
                "created_at": info.created_at,
                "generation": info.manifest.generation,
                "delta_indexes": len(info.manifest.delta_indexes),
                "tombstones": len(info.tombstones),
            }
            for info in infos
        ]

    def restore_snapshot(self, index: str, snapshot: str) -> dict[str, Any]:
        """Roll ``index`` back to a snapshot (point-in-time restore).

        One atomic manifest PUT re-points the index at the frozen base +
        delta set; the WAL is reset to the snapshot's write state (its
        tombstones pending again, every later append abandoned) and the live
        registry, catalog, and router caches are invalidated so the next
        query serves the restored timeline.  Raises :class:`ServiceError`
        404 for unknown indexes/snapshots and 409 when the snapshot's blobs
        no longer exist.
        """
        with self._store_errors():
            self._require_index(index)
            try:
                info = self._manager(index).restore_snapshot(snapshot)
            except KeyError:
                raise ServiceError(
                    404, "snapshot_not_found", f"index {index!r} has no snapshot {snapshot!r}"
                ) from None
            except SnapshotRestoreError as error:
                raise ServiceError(409, "snapshot_unrestorable", str(error)) from error
            # Abandon the live write state *after* the manifest swap: the
            # restored WAL carries exactly the snapshot's tombstones, and the
            # next touch of the index replays from it.
            self._ingest.discard(index)
            WriteAheadLog(self.store, index).restore(info.tombstones)
            self._catalog.invalidate(index)
            if self._router is not None:
                self._router.invalidate(index)
        return {
            "index": index,
            "snapshot": info.snapshot,
            "restored": True,
            "generation": self._manager(index).manifest().generation,
            "tombstones": len(info.tombstones),
        }

    def delete_snapshot(self, index: str, snapshot: str) -> dict[str, Any]:
        """Drop one snapshot; its pinned blobs become purgeable at compaction."""
        with self._store_errors():
            self._require_index(index)
            try:
                self._manager(index).delete_snapshot(snapshot)
            except KeyError:
                raise ServiceError(
                    404, "snapshot_not_found", f"index {index!r} has no snapshot {snapshot!r}"
                ) from None
        return {"index": index, "snapshot": snapshot, "deleted": True}

    # -- building ---------------------------------------------------------------------

    def build_index(
        self,
        name: str,
        blobs: Sequence[str],
        sketch_config: SketchConfig | None = None,
        num_shards: int = 1,
        partitioner: str = "hash",
        format_version: int | None = None,
    ) -> IndexInfo:
        """Build (or rebuild) index ``name`` over the given corpus blobs.

        ``num_shards > 1`` builds a sharded index: the corpus is partitioned
        (``"hash"`` or ``"round-robin"``), per-shard sub-indexes build in
        parallel, and queries later fan out across the shards in one batch.
        ``format_version`` pins the superpost codec (``None`` = current
        default, i.e. v2); pass 1 to write an index older readers can open.
        Any previously cached searcher for ``name`` is invalidated so the
        next query reopens the fresh header(s).
        """
        started = time.perf_counter()
        try:
            info = self._build_index(
                name,
                blobs,
                sketch_config=sketch_config,
                num_shards=num_shards,
                partitioner=partitioner,
                format_version=format_version,
            )
        except ServiceError as error:
            self._query_errors_metric.inc(error=error.info.error)
            raise
        except Exception:
            self._query_errors_metric.inc(error="internal_error")
            raise
        self._builds_metric.inc()
        self._build_seconds_metric.observe(time.perf_counter() - started)
        return info

    def _build_index(
        self,
        name: str,
        blobs: Sequence[str],
        sketch_config: SketchConfig | None = None,
        num_shards: int = 1,
        partitioner: str = "hash",
        format_version: int | None = None,
    ) -> IndexInfo:
        if (
            not name
            or not name.strip("/")
            or "/delta-" in name
            or "/shard-" in name
            or "/gen-" in name
            or "/snapshots/" in name
        ):
            raise ServiceError(400, "bad_index_name", f"invalid index name {name!r}")
        blobs = list(blobs)
        if not blobs:
            raise ServiceError(400, "bad_build_request", "build needs at least one corpus blob")
        missing = [blob for blob in blobs if not self.store.exists(blob)]
        if missing:
            raise ServiceError(
                404, "blob_not_found", f"corpus blob(s) not found: {', '.join(missing)}"
            )
        try:
            builder = AirphantBuilder(
                self.store,
                config=sketch_config,
                tokenizer=self._config.make_tokenizer(),
                num_shards=num_shards,
                partitioner=partitioner,
                format_version=format_version,
            )
        except ValueError as error:
            # Bad num_shards / partitioner / format_version — the request is at fault.
            raise ServiceError(400, "bad_build_request", str(error)) from error
        # The builder removes any stale blobs from a previous layout of this
        # name (e.g. resharding, or sharded -> single-shard), so a rebuild is
        # authoritative regardless of what was there before.  A read-only
        # backend (static http:// export) surfaces as 400 store_read_only
        # through _store_errors.
        with self._store_errors():
            builder.build_from_blobs(blobs, index_name=name, corpus_name=name)
        # A full rebuild is authoritative: any previous generational bases,
        # deltas, unflushed WAL segments, and snapshots describe documents
        # that are no longer part of this index.  Snapshots go first, so the
        # reset's purge is total (nothing left pinned).
        manager = AppendOnlyIndexManager(self.store, base_index=name)
        manager.delete_all_snapshots()
        if self.store.exists(manager.manifest_blob):
            manager.reset()
        self._ingest.discard(name, destroy_wal=True)
        self._catalog.invalidate(name)
        if self._router is not None:
            # The rebuild may have changed the shard count.
            self._router.invalidate(name)
        return self.index_info(name)
