"""Catalog of named, lazily-opened indexes backed by one object store.

A query node serves whatever indexes exist in its bucket.  The catalog
discovers them by listing header and shard-manifest blobs, opens each on
first use (downloading only the headers, as the paper's Figure 3 query node
does), and keeps the opened searcher for reuse.  An index with an
append-only manifest (see :mod:`repro.index.updates`) is opened as a
:class:`~repro.search.multi.MultiIndexSearcher` over the base plus all
deltas; a plain index is the degenerate single-member case of the same type,
so callers always get one uniform searcher interface.  Sharded indexes
(a ``shards.json`` manifest plus ``shard-NNNN/`` sub-indexes) are handled by
the member searchers themselves; their shard sub-indexes — like delta
indexes — are not directly addressable catalog entries.
"""

from __future__ import annotations

from threading import RLock

from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.metadata import (
    SHARD_MANIFEST_SUFFIX,
    ShardManifest,
    merge_shard_metadata,
)
from repro.index.sharding import SHARD_MARKER, read_shard_manifest
from repro.index.updates import (
    GENERATION_MARKER,
    SNAPSHOT_MARKER,
    AppendOnlyIndexManager,
)
from repro.search.multi import MultiIndexSearcher
from repro.service.api import IndexInfo
from repro.service.config import ServiceConfig
from repro.storage.base import ObjectStore, RangeRead

#: Path fragment that marks a delta index (a member of some base index, not a
#: directly addressable catalog entry).
_DELTA_MARKER = "/delta-"


class IndexCatalog:
    """Named indexes on one object store, opened lazily and cached."""

    def __init__(self, store: ObjectStore, config: ServiceConfig | None = None) -> None:
        self._store = store
        self._config = config if config is not None else ServiceConfig()
        self._searchers: dict[str, MultiIndexSearcher] = {}
        self._lock = RLock()

    @property
    def store(self) -> ObjectStore:
        """The object store holding every cataloged index."""
        return self._store

    @property
    def config(self) -> ServiceConfig:
        """Query-side configuration applied to every opened index."""
        return self._config

    # -- discovery -----------------------------------------------------------------

    def names(self) -> list[str]:
        """Names of all indexes in the store.

        Deltas fold into their base; shard sub-indexes fold into the sharded
        index their ``shards.json`` manifest names; generational base builds
        (``gen-NNNNNNNN/``, written by compaction) fold into the logical
        index their append-only manifest names — an index whose base has
        moved fully generational is discovered through that manifest alone.
        """
        header_suffix = f"/{HEADER_BLOB_SUFFIX}"
        shard_suffix = f"/{SHARD_MANIFEST_SUFFIX}"
        updates_suffix = f"/{AppendOnlyIndexManager.MANIFEST_SUFFIX}"
        names = set()
        for blob in self._store.list_blobs():
            if blob.endswith(header_suffix):
                name = blob[: -len(header_suffix)]
            elif blob.endswith(shard_suffix):
                name = blob[: -len(shard_suffix)]
            elif blob.endswith(updates_suffix):
                name = blob[: -len(updates_suffix)]
            else:
                continue
            if (
                _DELTA_MARKER in name
                or SHARD_MARKER in name
                or GENERATION_MARKER in name
                or SNAPSHOT_MARKER in name
            ):
                continue
            names.add(name)
        return sorted(names)

    def contains(self, name: str) -> bool:
        """Whether ``name`` is a servable index."""
        if (
            _DELTA_MARKER in name
            or SHARD_MARKER in name
            or GENERATION_MARKER in name
            or SNAPSHOT_MARKER in name
        ):
            return False
        return (
            self._store.exists(f"{name}/{HEADER_BLOB_SUFFIX}")
            or self._store.exists(ShardManifest.blob_name(name))
            or self._store.exists(f"{name}/{AppendOnlyIndexManager.MANIFEST_SUFFIX}")
        )

    def is_open(self, name: str) -> bool:
        """Whether ``name`` has already been opened (header in memory)."""
        return name in self._searchers

    def open_count(self) -> int:
        """How many indexes currently hold an opened searcher."""
        with self._lock:
            return len(self._searchers)

    def open_searchers(self) -> list[MultiIndexSearcher]:
        """Every currently opened searcher (for cache/occupancy accounting)."""
        with self._lock:
            return list(self._searchers.values())

    # -- opening --------------------------------------------------------------------

    def open(self, name: str) -> MultiIndexSearcher:
        """Return the searcher for ``name``, opening it on first use.

        Raises ``KeyError`` if no such index exists in the store.
        """
        with self._lock:
            searcher = self._searchers.get(name)
            if searcher is not None:
                return searcher
            if not self.contains(name):
                raise KeyError(name)
            manifest = AppendOnlyIndexManager(self._store, base_index=name).manifest()
            searcher = MultiIndexSearcher.open(
                self._store,
                manifest.all_indexes,
                tokenizer=self._config.make_tokenizer(),
                max_concurrency=self._config.max_concurrency,
                hedging=self._config.make_hedging(),
                top_k_delta=self._config.top_k_delta,
                query_cache_size=self._config.query_cache_size,
                coalesce_gap=self._config.coalesce_gap,
                read_cache_bytes=self._config.read_cache_bytes,
            )
            self._searchers[name] = searcher
            return searcher

    def invalidate(self, name: str | None = None) -> None:
        """Drop cached searcher(s) so the next use re-reads headers.

        Call after rebuilding an index (or appending a delta); with ``None``
        the whole cache is cleared.  Dropped searchers are closed, releasing
        their fetcher thread pools and block caches.
        """
        with self._lock:
            if name is None:
                dropped = list(self._searchers.values())
                self._searchers.clear()
            else:
                searcher = self._searchers.pop(name, None)
                dropped = [searcher] if searcher is not None else []
        for searcher in dropped:
            searcher.close()

    def close(self) -> None:
        """Close every opened searcher (the catalog stays usable afterwards)."""
        self.invalidate(None)

    # -- inspection -----------------------------------------------------------------

    def info(self, name: str) -> IndexInfo:
        """Describe ``name`` without forcing it open.

        For an unopened index the metadata is decoded from its header blob(s)
        directly; an opened index answers from memory.  Sharded indexes
        report their shard count and per-shard stats (taken from the shard
        manifest) alongside the aggregated corpus-wide metadata.

        Raises ``KeyError`` if no such index exists.
        """
        shard_manifest: ShardManifest | None = None
        searcher = self._searchers.get(name)
        if searcher is not None:
            base = searcher.searchers[0]
            metadata = base.metadata
            delta_names = tuple(searcher.index_names[1:])
            shard_manifest = base.shard_manifest
        else:
            if _DELTA_MARKER in name or SHARD_MARKER in name or GENERATION_MARKER in name:
                raise KeyError(name)
            # Resolve through the append-only manifest first: after a
            # compaction the live base sits under a gen-NNNNNNNN/ prefix
            # (and retired in-place blobs may linger for one generation of
            # reader grace — reading those would report stale metadata).
            manifest = AppendOnlyIndexManager(self._store, base_index=name).manifest()
            base_name = manifest.active_base
            header_blob = f"{base_name}/{HEADER_BLOB_SUFFIX}"
            if self._store.exists(header_blob):
                metadata = decode_header(self._store.get(header_blob)).metadata
            else:
                shard_manifest = read_shard_manifest(self._store, base_name)
                if shard_manifest is None:
                    raise KeyError(name)
                # One batched (pipeline-aware) fetch for all shard headers
                # rather than N dependent reads.
                payloads = self._store.read_many(
                    [
                        RangeRead(blob=f"{entry.name}/{HEADER_BLOB_SUFFIX}")
                        for entry in shard_manifest.shards
                    ]
                )
                shard_metadatas = [decode_header(payload).metadata for payload in payloads]
                metadata = merge_shard_metadata(
                    [entry for entry in shard_metadatas if entry is not None],
                    partitioner=shard_manifest.partitioner,
                )
            delta_names = manifest.delta_indexes
        assert metadata is not None
        return IndexInfo(
            name=name,
            num_documents=metadata.num_documents,
            num_terms=metadata.num_terms,
            num_layers=metadata.num_layers,
            num_common_words=metadata.num_common_words,
            expected_false_positives=metadata.expected_false_positives,
            delta_indexes=delta_names,
            storage_bytes=self._store.total_bytes(prefix=f"{name}/"),
            is_open=self.is_open(name),
            num_shards=shard_manifest.num_shards if shard_manifest is not None else 1,
            # ShardInfo aliases the manifest's ShardEntry, so the per-shard
            # stats pass through unchanged.
            shards=shard_manifest.shards if shard_manifest is not None else (),
        )

    def list_infos(self) -> list[IndexInfo]:
        """Describe every cataloged index, sorted by name."""
        return [self.info(name) for name in self.names()]
