"""Catalog of named, lazily-opened indexes backed by one object store.

A query node serves whatever indexes exist in its bucket.  The catalog
discovers them by listing header blobs, opens each on first use (downloading
only the header, as the paper's Figure 3 query node does), and keeps the
opened searcher for reuse.  An index with an append-only manifest (see
:mod:`repro.index.updates`) is opened as a
:class:`~repro.search.multi.MultiIndexSearcher` over the base plus all
deltas; a plain index is the degenerate single-member case of the same type,
so callers always get one uniform searcher interface.
"""

from __future__ import annotations

from threading import RLock

from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.updates import AppendOnlyIndexManager
from repro.search.multi import MultiIndexSearcher
from repro.service.api import IndexInfo
from repro.service.config import ServiceConfig
from repro.storage.base import ObjectStore

#: Path fragment that marks a delta index (a member of some base index, not a
#: directly addressable catalog entry).
_DELTA_MARKER = "/delta-"


class IndexCatalog:
    """Named indexes on one object store, opened lazily and cached."""

    def __init__(self, store: ObjectStore, config: ServiceConfig | None = None) -> None:
        self._store = store
        self._config = config if config is not None else ServiceConfig()
        self._searchers: dict[str, MultiIndexSearcher] = {}
        self._lock = RLock()

    @property
    def store(self) -> ObjectStore:
        """The object store holding every cataloged index."""
        return self._store

    @property
    def config(self) -> ServiceConfig:
        """Query-side configuration applied to every opened index."""
        return self._config

    # -- discovery -----------------------------------------------------------------

    def names(self) -> list[str]:
        """Names of all indexes in the store (deltas folded into their base)."""
        suffix = f"/{HEADER_BLOB_SUFFIX}"
        names = []
        for blob in self._store.list_blobs():
            if not blob.endswith(suffix):
                continue
            name = blob[: -len(suffix)]
            if _DELTA_MARKER in name:
                continue
            names.append(name)
        return sorted(names)

    def contains(self, name: str) -> bool:
        """Whether ``name`` is a servable index."""
        if _DELTA_MARKER in name:
            return False
        return self._store.exists(f"{name}/{HEADER_BLOB_SUFFIX}")

    def is_open(self, name: str) -> bool:
        """Whether ``name`` has already been opened (header in memory)."""
        return name in self._searchers

    # -- opening --------------------------------------------------------------------

    def open(self, name: str) -> MultiIndexSearcher:
        """Return the searcher for ``name``, opening it on first use.

        Raises ``KeyError`` if no such index exists in the store.
        """
        with self._lock:
            searcher = self._searchers.get(name)
            if searcher is not None:
                return searcher
            if not self.contains(name):
                raise KeyError(name)
            manifest = AppendOnlyIndexManager(self._store, base_index=name).manifest()
            searcher = MultiIndexSearcher.open(
                self._store,
                manifest.all_indexes,
                tokenizer=self._config.make_tokenizer(),
                max_concurrency=self._config.max_concurrency,
                hedging=self._config.make_hedging(),
                top_k_delta=self._config.top_k_delta,
                query_cache_size=self._config.query_cache_size,
            )
            self._searchers[name] = searcher
            return searcher

    def invalidate(self, name: str | None = None) -> None:
        """Drop cached searcher(s) so the next use re-reads headers.

        Call after rebuilding an index (or appending a delta); with ``None``
        the whole cache is cleared.
        """
        with self._lock:
            if name is None:
                self._searchers.clear()
            else:
                self._searchers.pop(name, None)

    # -- inspection -----------------------------------------------------------------

    def info(self, name: str) -> IndexInfo:
        """Describe ``name`` without forcing it open.

        For an unopened index the metadata is decoded from its header blob
        directly; an opened index answers from memory.

        Raises ``KeyError`` if no such index exists.
        """
        searcher = self._searchers.get(name)
        if searcher is not None:
            metadata = searcher.searchers[0].metadata
            delta_names = tuple(searcher.index_names[1:])
        else:
            header_blob = f"{name}/{HEADER_BLOB_SUFFIX}"
            if _DELTA_MARKER in name or not self._store.exists(header_blob):
                raise KeyError(name)
            metadata = decode_header(self._store.get(header_blob)).metadata
            manifest = AppendOnlyIndexManager(self._store, base_index=name).manifest()
            delta_names = manifest.delta_indexes
        assert metadata is not None
        return IndexInfo(
            name=name,
            num_documents=metadata.num_documents,
            num_terms=metadata.num_terms,
            num_layers=metadata.num_layers,
            num_common_words=metadata.num_common_words,
            expected_false_positives=metadata.expected_false_positives,
            delta_indexes=delta_names,
            storage_bytes=self._store.total_bytes(prefix=f"{name}/"),
            is_open=self.is_open(name),
        )

    def list_infos(self) -> list[IndexInfo]:
        """Describe every cataloged index, sorted by name."""
        return [self.info(name) for name in self.names()]
