"""Airphant as a long-lived query service.

The service layer is the public query-side API of the reproduction: typed
request/response objects (:mod:`repro.service.api`), one shared configuration
(:mod:`repro.service.config`), a catalog of lazily-opened indexes
(:mod:`repro.service.catalog`), the :class:`AirphantService` facade that
dispatches every query mode (:mod:`repro.service.facade`), and a stdlib-only
JSON HTTP server (:mod:`repro.service.http`) started with
``airphant serve``.
"""

from repro.service.api import (
    SEARCH_MODES,
    DocumentHit,
    ErrorInfo,
    IndexInfo,
    LatencyInfo,
    SearchRequest,
    SearchResponse,
    ServiceError,
    ShardInfo,
)
from repro.service.catalog import IndexCatalog
from repro.service.config import ServiceConfig
from repro.service.facade import AirphantService
from repro.service.http import AirphantHTTPServer, create_server, serve_forever

__all__ = [
    "SEARCH_MODES",
    "AirphantHTTPServer",
    "AirphantService",
    "DocumentHit",
    "ErrorInfo",
    "IndexCatalog",
    "IndexInfo",
    "LatencyInfo",
    "SearchRequest",
    "SearchResponse",
    "ServiceConfig",
    "ServiceError",
    "ShardInfo",
    "create_server",
    "serve_forever",
]
