"""Typed request/response surface of the Airphant query service.

Everything a client exchanges with :class:`~repro.service.facade.AirphantService`
— directly in Python or over the HTTP API — is one of the dataclasses below.
They are plain data: construction validates the payload, ``to_dict``/``to_json``
produce the wire representation, and ``from_dict``/``from_json`` rebuild them,
so the same types serve as the Python SDK and the HTTP schema.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

# The per-shard stats on the wire are exactly the shard manifest's entries;
# the alias keeps one definition while giving the API surface its own name.
from repro.index.metadata import ShardEntry as ShardInfo
from repro.search.results import SearchResult

#: Query modes the service can dispatch.
SEARCH_MODES = ("keyword", "boolean", "regex", "topk_bm25")

__all__ = [
    "SEARCH_MODES",
    "DocumentHit",
    "ErrorInfo",
    "IndexInfo",
    "LatencyInfo",
    "SearchRequest",
    "SearchResponse",
    "ServiceError",
    "ShardErrorInfo",
    "ShardInfo",
]


class ServiceError(Exception):
    """A request the service rejects, carrying an HTTP-style status code."""

    def __init__(self, status: int, error: str, message: str) -> None:
        super().__init__(message)
        self.info = ErrorInfo(status=status, error=error, message=message)

    @property
    def status(self) -> int:
        """HTTP status code of the rejection."""
        return self.info.status


@dataclass(frozen=True)
class ErrorInfo:
    """Structured error body returned by the service and the HTTP API."""

    status: int
    error: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {"status": self.status, "error": self.error, "message": self.message}

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ErrorInfo":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            status=int(data["status"]),
            error=str(data["error"]),
            message=str(data["message"]),
        )

    @classmethod
    def from_json(cls, payload: str | bytes) -> "ErrorInfo":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class SearchRequest:
    """One query against a named index.

    ``mode`` selects how ``query`` is interpreted:

    * ``"keyword"`` — whitespace keywords, implicitly AND-ed;
    * ``"boolean"`` — ``error AND (timeout OR refused)`` syntax;
    * ``"regex"`` — a regular expression accelerated via its literal words;
    * ``"topk_bm25"`` — BM25-ranked retrieval: the best ``top_k`` documents
      matching all keywords, each with a score normalized into [0, 1].

    ``top_k`` caps the number of returned documents (top-K sampling,
    Equation 6 of the paper; for ``"topk_bm25"`` it is the ranked ``k``,
    defaulting to the service's configured value); ``include_text`` controls
    whether document bodies are returned or only their
    ``(blob, offset, length)`` references.

    ``weights`` (ranked mode only) boosts or damps individual query terms:
    a ``{term: positive multiplier}`` mapping applied to each term's BM25
    contribution.  Terms not named keep weight 1.0.

    ``shards`` restricts execution to a subset of the index's shard
    ordinals — the scatter half of the cluster tier's scatter-gather: a
    router sends each searcher node the same query with a different
    ``shards`` list and merges the partial answers.  ``None`` (the default)
    answers over every shard; unsharded members (a plain index, deltas, the
    memtable) belong to ordinal 0.

    ``explain`` asks the service to attach the query's full span tree (plus
    a per-wave summary) to the response — see ``docs/OBSERVABILITY.md``.
    """

    query: str
    index: str = "airphant-index"
    mode: str = "keyword"
    top_k: int | None = None
    include_text: bool = True
    shards: tuple[int, ...] | None = None
    weights: tuple[tuple[str, float], ...] | None = None
    explain: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.query, str) or not self.query.strip():
            raise ValueError("query must be a non-empty string")
        if not isinstance(self.explain, bool):
            raise ValueError(f"explain must be a boolean, got {self.explain!r}")
        if not isinstance(self.index, str) or not self.index:
            raise ValueError("index must be a non-empty string")
        if self.mode not in SEARCH_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {', '.join(SEARCH_MODES)}"
            )
        if self.top_k is not None:
            if not isinstance(self.top_k, int) or isinstance(self.top_k, bool):
                raise ValueError(f"top_k must be an integer, got {self.top_k!r}")
            if self.top_k <= 0:
                raise ValueError(f"top_k must be positive, got {self.top_k}")
        if self.shards is not None:
            if isinstance(self.shards, (str, bytes)) or not isinstance(
                self.shards, (list, tuple)
            ):
                raise ValueError(f"shards must be a list of shard ordinals, got {self.shards!r}")
            ordinals = tuple(self.shards)
            if not ordinals:
                raise ValueError("shards must name at least one shard ordinal")
            for ordinal in ordinals:
                if not isinstance(ordinal, int) or isinstance(ordinal, bool) or ordinal < 0:
                    raise ValueError(f"shard ordinals must be non-negative integers, got {ordinal!r}")
            # Canonical form: sorted, de-duplicated, immutable.
            object.__setattr__(self, "shards", tuple(sorted(set(ordinals))))
        if self.weights is not None:
            if self.mode != "topk_bm25":
                raise ValueError("weights are only valid with mode='topk_bm25'")
            if isinstance(self.weights, (str, bytes)) or not isinstance(
                self.weights, (dict, list, tuple)
            ):
                raise ValueError(
                    f"weights must map terms to positive numbers, got {self.weights!r}"
                )
            pairs = (
                tuple(self.weights.items())
                if isinstance(self.weights, dict)
                else tuple(tuple(pair) for pair in self.weights)
            )
            for pair in pairs:
                if len(pair) != 2:
                    raise ValueError(f"malformed weight entry {pair!r}")
                term, weight = pair
                if not isinstance(term, str) or not term:
                    raise ValueError(f"weight terms must be non-empty strings, got {term!r}")
                if isinstance(weight, bool) or not isinstance(weight, (int, float)):
                    raise ValueError(f"weight for {term!r} must be a number, got {weight!r}")
                if not weight > 0:
                    raise ValueError(f"weight for {term!r} must be positive, got {weight}")
            # Canonical form: sorted by term, floats, immutable (the request
            # stays hashable for caching layers).
            canonical = tuple(
                sorted((term, float(weight)) for term, weight in dict(pairs).items())
            )
            object.__setattr__(self, "weights", canonical)

    @property
    def weight_map(self) -> dict[str, float] | None:
        """The canonicalized weights as a plain mapping (``None`` if unset)."""
        if self.weights is None:
            return None
        return dict(self.weights)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (``shards``/``weights`` only when set)."""
        payload: dict[str, Any] = {
            "query": self.query,
            "index": self.index,
            "mode": self.mode,
            "top_k": self.top_k,
            "include_text": self.include_text,
        }
        if self.shards is not None:
            payload["shards"] = list(self.shards)
        if self.weights is not None:
            payload["weights"] = dict(self.weights)
        if self.explain:
            payload["explain"] = True
        return payload

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchRequest":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown search request field(s): {', '.join(sorted(unknown))}")
        if "query" not in data:
            raise ValueError("search request is missing the required 'query' field")
        return cls(**dict(data))

    @classmethod
    def from_json(cls, payload: str | bytes) -> "SearchRequest":
        """Rebuild from :meth:`to_json` output."""
        data = json.loads(payload)
        if not isinstance(data, dict):
            raise ValueError("search request body must be a JSON object")
        return cls.from_dict(data)


@dataclass(frozen=True)
class DocumentHit:
    """One matching document: its storage reference plus (optionally) its text."""

    blob: str
    offset: int
    length: int
    text: str | None = None
    #: Ranked modes only: the document's normalized BM25 score in [0, 1].
    score: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (text/score omitted when absent)."""
        entry: dict[str, Any] = {
            "blob": self.blob,
            "offset": self.offset,
            "length": self.length,
        }
        if self.score is not None:
            entry["score"] = self.score
        if self.text is not None:
            entry["text"] = self.text
        return entry

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DocumentHit":
        """Rebuild from :meth:`to_dict` output."""
        score = data.get("score")
        return cls(
            blob=str(data["blob"]),
            offset=int(data["offset"]),
            length=int(data["length"]),
            text=data.get("text"),
            score=float(score) if score is not None else None,
        )


@dataclass(frozen=True)
class LatencyInfo:
    """Simulated latency breakdown of one answered query."""

    lookup_ms: float = 0.0
    retrieval_ms: float = 0.0
    wait_ms: float = 0.0
    download_ms: float = 0.0
    bytes_fetched: int = 0
    round_trips: int = 0

    @property
    def total_ms(self) -> float:
        """End-to-end simulated latency."""
        return self.lookup_ms + self.retrieval_ms

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (includes the derived total)."""
        return {
            "lookup_ms": self.lookup_ms,
            "retrieval_ms": self.retrieval_ms,
            "wait_ms": self.wait_ms,
            "download_ms": self.download_ms,
            "bytes_fetched": self.bytes_fetched,
            "round_trips": self.round_trips,
            "total_ms": self.total_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencyInfo":
        """Rebuild from :meth:`to_dict` output (the derived total is ignored)."""
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass(frozen=True)
class ShardErrorInfo:
    """One shard a routed query could not answer (the degraded detail).

    Attached to a partial :class:`SearchResponse` by the cluster router:
    ``shard`` is the unanswered ordinal, ``node`` the last replica tried,
    ``error`` a stable machine-readable code (``node_timeout``,
    ``node_unreachable``, ``node_error``, ``no_replicas``), and ``message``
    the human-readable cause.
    """

    shard: int
    node: str
    error: str
    message: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "shard": self.shard,
            "node": self.node,
            "error": self.error,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardErrorInfo":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            shard=int(data["shard"]),
            node=str(data["node"]),
            error=str(data["error"]),
            message=str(data["message"]),
        )


@dataclass(frozen=True)
class SearchResponse:
    """The service's answer to one :class:`SearchRequest`.

    ``partial`` / ``shard_errors`` are set only by the cluster router when
    some shards could not be answered: the response then holds the merged
    results of the *surviving* shards plus one :class:`ShardErrorInfo` per
    unanswered shard.  A complete answer (every single-node response, and
    every fully-merged routed one) leaves them at their defaults, and
    ``to_dict`` omits them — so a healthy routed answer serializes exactly
    like a single-node one.

    ``trace`` carries the query's serialized span tree (plus a per-wave
    summary): attached on explain queries and on sub-requests that received
    trace-propagation headers, omitted from the wire otherwise.
    """

    query: str
    index: str
    mode: str
    documents: tuple[DocumentHit, ...] = ()
    num_candidates: int = 0
    false_positive_count: int = 0
    latency: LatencyInfo = field(default_factory=LatencyInfo)
    partial: bool = False
    shard_errors: tuple[ShardErrorInfo, ...] = ()
    trace: Mapping[str, Any] | None = None

    @property
    def num_results(self) -> int:
        """Number of documents that truly match the query."""
        return len(self.documents)

    @classmethod
    def from_result(cls, request: SearchRequest, result: SearchResult) -> "SearchResponse":
        """Build the response for ``request`` from a searcher's ``result``."""
        scores = result.scores
        documents = tuple(
            DocumentHit(
                blob=document.blob,
                offset=document.offset,
                length=document.length,
                text=document.text if request.include_text else None,
                score=(
                    scores[position]
                    if scores is not None and position < len(scores)
                    else None
                ),
            )
            for position, document in enumerate(result.documents)
        )
        latency = result.latency
        return cls(
            query=request.query,
            index=request.index,
            mode=request.mode,
            documents=documents,
            num_candidates=result.num_candidates,
            false_positive_count=result.false_positive_count,
            latency=LatencyInfo(
                lookup_ms=latency.lookup_ms,
                retrieval_ms=latency.retrieval_ms,
                wait_ms=latency.wait_ms,
                download_ms=latency.download_ms,
                bytes_fetched=latency.bytes_fetched,
                round_trips=latency.round_trips,
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (partial fields only when set)."""
        payload: dict[str, Any] = {
            "query": self.query,
            "index": self.index,
            "mode": self.mode,
            "num_results": self.num_results,
            "num_candidates": self.num_candidates,
            "false_positive_count": self.false_positive_count,
            "documents": [document.to_dict() for document in self.documents],
            "latency": self.latency.to_dict(),
        }
        if self.partial or self.shard_errors:
            payload["partial"] = self.partial
            payload["shard_errors"] = [error.to_dict() for error in self.shard_errors]
        if self.trace is not None:
            payload["trace"] = dict(self.trace)
        return payload

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SearchResponse":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            query=str(data["query"]),
            index=str(data["index"]),
            mode=str(data["mode"]),
            documents=tuple(
                DocumentHit.from_dict(entry) for entry in data.get("documents", [])
            ),
            num_candidates=int(data.get("num_candidates", 0)),
            false_positive_count=int(data.get("false_positive_count", 0)),
            latency=LatencyInfo.from_dict(data.get("latency", {})),
            partial=bool(data.get("partial", False)),
            shard_errors=tuple(
                ShardErrorInfo.from_dict(entry) for entry in data.get("shard_errors", ())
            ),
            trace=data.get("trace"),
        )

    @classmethod
    def from_json(cls, payload: str | bytes) -> "SearchResponse":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))


@dataclass(frozen=True)
class IndexInfo:
    """What the service knows about one named index in its catalog.

    ``num_shards`` is 1 and ``shards`` empty for a plain single-shard index;
    a sharded index reports one :class:`ShardInfo` per shard (``num_terms``
    then sums *per-shard* distinct terms, so a term spanning shards counts
    once per shard it appears in).
    """

    name: str
    num_documents: int = 0
    num_terms: int = 0
    num_layers: int = 0
    num_common_words: int = 0
    expected_false_positives: float = 0.0
    delta_indexes: tuple[str, ...] = ()
    storage_bytes: int = 0
    is_open: bool = False
    num_shards: int = 1
    shards: tuple[ShardInfo, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "num_documents": self.num_documents,
            "num_terms": self.num_terms,
            "num_layers": self.num_layers,
            "num_common_words": self.num_common_words,
            "expected_false_positives": self.expected_false_positives,
            "delta_indexes": list(self.delta_indexes),
            "storage_bytes": self.storage_bytes,
            "is_open": self.is_open,
            "num_shards": self.num_shards,
            "shards": [shard.to_dict() for shard in self.shards],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Serialize as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IndexInfo":
        """Rebuild from :meth:`to_dict` output."""
        known = set(cls.__dataclass_fields__)
        fields = {key: value for key, value in data.items() if key in known}
        fields["delta_indexes"] = tuple(fields.get("delta_indexes", ()))
        fields["shards"] = tuple(
            ShardInfo.from_dict(entry) for entry in fields.get("shards", ())
        )
        return cls(**fields)

    @classmethod
    def from_json(cls, payload: str | bytes) -> "IndexInfo":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(payload))
