"""Shared query-side configuration of the Airphant service.

One :class:`ServiceConfig` governs every index the service opens: the
tokenizer (which must match the one used at build time for exact keyword
semantics), the fetch concurrency, the hedging policy of Section IV-G, and
the per-word query cache.  It replaces the previous pattern of threading the
same half-dozen constructor kwargs through ``AirphantSearcher``,
``MultiIndexSearcher``, and the CLI by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.observability import NULL_REGISTRY
from repro.parsing.tokenizer import SimpleAnalyzer, Tokenizer, WhitespaceAnalyzer
from repro.search.replication import HedgingPolicy
from repro.storage.base import ObjectStore
from repro.storage.resilient import ResilientStore
from repro.storage.simulated import SimulatedCloudStore

#: Named tokenizers a config (or an HTTP client) can select.
TOKENIZERS = ("whitespace", "simple")


@dataclass(frozen=True)
class ServiceConfig:
    """Query-side knobs shared by all indexes the service serves.

    Parameters
    ----------
    tokenizer:
        ``"whitespace"`` (the paper's analyzer) or ``"simple"``
        (lowercasing + punctuation stripping).
    max_concurrency:
        In-flight range reads per fetch batch (the paper uses 32).
    drop_slowest:
        Superpost requests a query may abandon (hedging, Section IV-G);
        0 disables hedging.
    query_cache_size:
        Per-word postings-list LRU capacity; 0 disables the cache.
    top_k_delta:
        Failure probability of the top-K sampling bound (Equation 6).
    min_literal_length:
        Shortest literal word the regex mode uses as an index filter.
    default_top_k:
        Applied when a request does not specify ``top_k``; ``None`` returns
        every match.
    coalesce_gap:
        Largest same-blob gap (bytes) the read pipeline bridges when merging
        adjacent range reads into one request; 0 merges only
        overlapping/adjacent ranges.
    read_cache_bytes:
        Byte budget of the read pipeline's LRU block cache; 0 disables it.
    retries:
        Transient store failures retried per request by the
        :class:`~repro.storage.resilient.ResilientStore` wrapper; 0 leaves
        the store unwrapped (unless a timeout or hedging asks for it).
    retry_backoff_ms:
        First-retry backoff in milliseconds (doubles per retry, jittered).
    request_timeout_s:
        Per-attempt wall-clock bound on store requests; ``None`` disables.
    hedge_ms:
        Floor of the hedged-read delay in milliseconds; 0 disables hedged
        duplicate reads.
    hedge_percentile:
        Latency percentile the adaptive hedge delay tracks (floored at
        ``hedge_ms``).
    ingest_flush_docs:
        Memtable document count that triggers a background flush into a
        delta index.
    ingest_flush_bytes:
        Memtable byte budget (raw document bytes) that triggers a flush.
    ingest_compact_deltas:
        Stacked-delta count that triggers background compaction into a new
        base generation; 0 disables the count trigger.
    ingest_compact_ratio:
        Delta-bytes / base-bytes ratio that triggers compaction; 0 disables
        the ratio trigger (it needs storage listings, so it is only
        evaluated after a flush changes the delta stack).
    ingest_interval_s:
        Poll interval of the background ingest worker; 0 disables the
        worker entirely (flush/compaction happen only on explicit calls).
    ingest_max_memtable_docs:
        Memtable occupancy (documents) above which writes are rejected
        with ``ingest_overloaded`` (HTTP 429); 0 — the default — disables
        the limit.  Backpressure for when the memtable outruns the flusher.
    ingest_max_memtable_bytes:
        Memtable occupancy (raw document bytes) above which writes are
        rejected with ``ingest_overloaded``; 0 disables the limit.
    ingest_overload_wait_s:
        How long an over-limit write blocks waiting for a flush to drain
        the memtable before the 429 is raised; 0 rejects immediately.
    peers:
        Base URLs of the cluster's searcher nodes (normally including this
        node's own URL).  Empty — the default — keeps the node standalone;
        non-empty turns the service into a query router that scatters
        ``POST /search`` over the peers' shard subsets and merges the
        partial answers (see :mod:`repro.cluster`).
    replication_factor:
        Distinct nodes each shard is assigned to; replicas beyond the
        first serve as failover / hedge targets for the router.
    shard_timeout_s:
        Wall-clock bound on one node's answer for its shard subset; a
        timed-out node counts as failed and the next replica is tried.
    node_hedge_ms:
        Delay after which the router duplicates a still-unanswered shard
        query to the next replica (node-level hedged reads, mirroring the
        storage layer's :class:`ResilientStore`); 0 disables hedging and
        replicas are only tried sequentially on failure.
    node_retries:
        Extra full passes over a shard's replica set before the router
        gives the shard up and answers partially.
    probe_interval_s:
        Period of the background ``/healthz`` probes feeding the router's
        mark-down/mark-up decisions; 0 disables background probing (peers
        are then only marked down when queries to them fail).
    metrics_enabled:
        Whether the service *exports* metrics (``GET /metrics``, the
        ``metrics`` block of ``/healthz``) and records its own query/build
        accounting.  When off, the facade and the resilience wrapper
        record into a disabled registry and ``/metrics`` answers 404;
        storage-layer counters (pipeline, backends, simulated store) still
        record into the process-wide registry — they are shared across
        services and near-free — they are simply not served by this node.
    tracing_enabled:
        Whether the service builds a :class:`~repro.observability.tracing.Tracer`
        at all.  When off, ``explain`` requests carry no trace, ``GET
        /traces`` answers 404, and queries run with the no-op ambient span
        (a single contextvar read per instrumented site).
    trace_sample_rate:
        Fraction of ordinary (non-explain) queries whose span trees are
        retained in the in-memory trace buffer; 0 keeps only explained,
        propagated, and slow queries, 1 keeps everything.
    trace_buffer:
        Capacity of the in-memory trace ring buffer served by ``GET
        /traces`` (oldest traces evicted first).
    slow_query_ms:
        Queries slower than this emit a structured JSON line to the
        slow-query log and are always retained in the trace buffer
        regardless of sampling; 0 disables slow-query capture.
    """

    tokenizer: str = "whitespace"
    max_concurrency: int = 32
    drop_slowest: int = 0
    query_cache_size: int = 0
    top_k_delta: float = 1e-6
    min_literal_length: int = 2
    default_top_k: int | None = None
    coalesce_gap: int = 0
    read_cache_bytes: int = 0
    retries: int = 0
    retry_backoff_ms: float = 20.0
    request_timeout_s: float | None = None
    hedge_ms: float = 0.0
    hedge_percentile: float = 95.0
    ingest_flush_docs: int = 512
    ingest_flush_bytes: int = 1_048_576
    ingest_compact_deltas: int = 4
    ingest_compact_ratio: float = 0.0
    ingest_interval_s: float = 0.25
    ingest_max_memtable_docs: int = 0
    ingest_max_memtable_bytes: int = 0
    ingest_overload_wait_s: float = 0.0
    peers: tuple[str, ...] = ()
    replication_factor: int = 2
    shard_timeout_s: float = 5.0
    node_hedge_ms: float = 0.0
    node_retries: int = 1
    probe_interval_s: float = 5.0
    metrics_enabled: bool = True
    tracing_enabled: bool = True
    trace_sample_rate: float = 0.0
    trace_buffer: int = 256
    slow_query_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.tokenizer not in TOKENIZERS:
            raise ValueError(
                f"unknown tokenizer {self.tokenizer!r}; expected one of {', '.join(TOKENIZERS)}"
            )
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.drop_slowest < 0:
            raise ValueError("drop_slowest must be non-negative")
        if self.query_cache_size < 0:
            raise ValueError("query_cache_size must be non-negative")
        if self.default_top_k is not None and self.default_top_k <= 0:
            raise ValueError("default_top_k must be positive when set")
        if self.coalesce_gap < 0:
            raise ValueError("coalesce_gap must be non-negative")
        if self.read_cache_bytes < 0:
            raise ValueError("read_cache_bytes must be non-negative")
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive when set")
        if self.hedge_ms < 0:
            raise ValueError("hedge_ms must be non-negative")
        if not 0.0 < self.hedge_percentile <= 100.0:
            raise ValueError("hedge_percentile must be in (0, 100]")
        if self.ingest_flush_docs <= 0:
            raise ValueError("ingest_flush_docs must be positive")
        if self.ingest_flush_bytes <= 0:
            raise ValueError("ingest_flush_bytes must be positive")
        if self.ingest_compact_deltas < 0:
            raise ValueError("ingest_compact_deltas must be non-negative")
        if self.ingest_compact_ratio < 0:
            raise ValueError("ingest_compact_ratio must be non-negative")
        if self.ingest_interval_s < 0:
            raise ValueError("ingest_interval_s must be non-negative")
        if self.ingest_max_memtable_docs < 0:
            raise ValueError("ingest_max_memtable_docs must be non-negative")
        if self.ingest_max_memtable_bytes < 0:
            raise ValueError("ingest_max_memtable_bytes must be non-negative")
        if self.ingest_overload_wait_s < 0:
            raise ValueError("ingest_overload_wait_s must be non-negative")
        # Normalize peers: accept any iterable of URLs (from_dict hands a
        # JSON list), dedupe preserving order, strip trailing slashes.
        if isinstance(self.peers, (str, bytes)):
            raise ValueError("peers must be a sequence of base URLs, not a string")
        peers = tuple(dict.fromkeys(str(peer).rstrip("/") for peer in self.peers))
        for peer in peers:
            if not peer.startswith(("http://", "https://")):
                raise ValueError(f"peer {peer!r} must be an http(s):// base URL")
        object.__setattr__(self, "peers", peers)
        if self.replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if self.shard_timeout_s <= 0:
            raise ValueError("shard_timeout_s must be positive")
        if self.node_hedge_ms < 0:
            raise ValueError("node_hedge_ms must be non-negative")
        if self.node_retries < 0:
            raise ValueError("node_retries must be non-negative")
        if self.probe_interval_s < 0:
            raise ValueError("probe_interval_s must be non-negative")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ValueError("trace_sample_rate must be within [0, 1]")
        if self.trace_buffer <= 0:
            raise ValueError("trace_buffer must be positive")
        if self.slow_query_ms < 0:
            raise ValueError("slow_query_ms must be non-negative")

    def make_tokenizer(self) -> Tokenizer:
        """Instantiate the configured tokenizer."""
        if self.tokenizer == "simple":
            return SimpleAnalyzer()
        return WhitespaceAnalyzer()

    def make_hedging(self) -> HedgingPolicy:
        """Instantiate the configured hedging policy."""
        return HedgingPolicy(drop_slowest=self.drop_slowest)

    @property
    def resilience_enabled(self) -> bool:
        """Whether any retry / timeout / hedged-read knob is active."""
        return self.retries > 0 or self.request_timeout_s is not None or self.hedge_ms > 0

    def wrap_store(self, store: ObjectStore) -> ObjectStore:
        """Apply the configured resilience policy to ``store``.

        Returns
        -------
        ``store`` untouched when every resilience knob is off (no wrapper,
        no overhead), else a
        :class:`~repro.storage.resilient.ResilientStore` around it.  Stores
        that are already resilient are not double-wrapped.  A simulated
        store is never wrapped *on top* — that would hide the simulator
        from the fetcher's batch-timing path and silently zero every
        simulated latency — instead the resilience wrapper slides
        *underneath* the simulation layer, guarding the real backend while
        virtual-clock timing stays in charge.
        """
        if not self.resilience_enabled or isinstance(store, ResilientStore):
            return store
        if isinstance(store, SimulatedCloudStore):
            return store.with_backend(self.wrap_store(store.backend))
        return ResilientStore(
            store,
            retries=self.retries,
            backoff_ms=self.retry_backoff_ms,
            timeout_s=self.request_timeout_s,
            hedge_ms=self.hedge_ms,
            hedge_percentile=self.hedge_percentile,
            # Twice the fetcher's batch concurrency: a fully-slow wave must
            # not saturate the hedge pool, or the duplicates would queue
            # behind the very stragglers they are meant to race.
            hedge_concurrency=2 * self.max_concurrency,
            metrics=None if self.metrics_enabled else NULL_REGISTRY,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (reported by ``/healthz``)."""
        return {
            "tokenizer": self.tokenizer,
            "max_concurrency": self.max_concurrency,
            "drop_slowest": self.drop_slowest,
            "query_cache_size": self.query_cache_size,
            "top_k_delta": self.top_k_delta,
            "min_literal_length": self.min_literal_length,
            "default_top_k": self.default_top_k,
            "coalesce_gap": self.coalesce_gap,
            "read_cache_bytes": self.read_cache_bytes,
            "retries": self.retries,
            "retry_backoff_ms": self.retry_backoff_ms,
            "request_timeout_s": self.request_timeout_s,
            "hedge_ms": self.hedge_ms,
            "hedge_percentile": self.hedge_percentile,
            "ingest_flush_docs": self.ingest_flush_docs,
            "ingest_flush_bytes": self.ingest_flush_bytes,
            "ingest_compact_deltas": self.ingest_compact_deltas,
            "ingest_compact_ratio": self.ingest_compact_ratio,
            "ingest_interval_s": self.ingest_interval_s,
            "ingest_max_memtable_docs": self.ingest_max_memtable_docs,
            "ingest_max_memtable_bytes": self.ingest_max_memtable_bytes,
            "ingest_overload_wait_s": self.ingest_overload_wait_s,
            "peers": list(self.peers),
            "replication_factor": self.replication_factor,
            "shard_timeout_s": self.shard_timeout_s,
            "node_hedge_ms": self.node_hedge_ms,
            "node_retries": self.node_retries,
            "probe_interval_s": self.probe_interval_s,
            "metrics_enabled": self.metrics_enabled,
            "tracing_enabled": self.tracing_enabled,
            "trace_sample_rate": self.trace_sample_rate,
            "trace_buffer": self.trace_buffer,
            "slow_query_ms": self.slow_query_ms,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceConfig":
        """Rebuild from :meth:`to_dict` output (unknown keys ignored)."""
        known = set(cls.__dataclass_fields__)
        return cls(**{key: value for key, value in data.items() if key in known})
