"""Built-in replication against long-tail requests (Section IV-G).

Because a query fetches its L superposts in parallel, the slowest request
determines the lookup latency.  The multi-layer structure doubles as a
replication mechanism: the Searcher can issue all L requests but continue as
soon as ``L - drop_slowest`` of them complete, discarding the stragglers.
Dropping layers never loses relevant documents (each layer's superpost is a
superset of the true postings list); it only admits more false positives,
which the document-filtering step removes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HedgingPolicy:
    """How many trailing superpost requests a query may abandon.

    ``drop_slowest = 0`` disables hedging (wait for all layers).  A policy is
    typically paired with an over-provisioned layer count L⁺ chosen at build
    time so that accuracy stays within the target even after drops.
    """

    drop_slowest: int = 0

    def __post_init__(self) -> None:
        if self.drop_slowest < 0:
            raise ValueError("drop_slowest must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether hedging is active."""
        return self.drop_slowest > 0

    def required_of(self, num_requests: int) -> int:
        """Number of requests that must complete out of ``num_requests``."""
        if num_requests <= 0:
            return 0
        return max(1, num_requests - self.drop_slowest)
