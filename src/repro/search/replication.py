"""Built-in replication against long-tail requests (Section IV-G).

Because a query fetches its L superposts in parallel, the slowest request
determines the lookup latency.  The multi-layer structure doubles as a
replication mechanism: the Searcher can issue all L requests but continue as
soon as ``L - drop_slowest`` of them complete, discarding the stragglers.
Dropping layers never loses relevant documents (each layer's superpost is a
superset of the true postings list); it only admits more false positives,
which the document-filtering step removes anyway.

The same long-tail reasoning applies one level up, across *nodes* of a
scale-out query tier: :class:`HashRing` provides the consistent-hash
placement math that assigns index shards to searcher nodes with bounded key
movement under membership churn, and :func:`place_replicas` derives the
ordered replica set a router hedges across (see :mod:`repro.cluster`).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class HedgingPolicy:
    """How many trailing superpost requests a query may abandon.

    ``drop_slowest = 0`` disables hedging (wait for all layers).  A policy is
    typically paired with an over-provisioned layer count L⁺ chosen at build
    time so that accuracy stays within the target even after drops.
    """

    drop_slowest: int = 0

    def __post_init__(self) -> None:
        if self.drop_slowest < 0:
            raise ValueError("drop_slowest must be non-negative")

    @property
    def enabled(self) -> bool:
        """Whether hedging is active."""
        return self.drop_slowest > 0

    def required_of(self, num_requests: int) -> int:
        """Number of requests that must complete out of ``num_requests``."""
        if num_requests <= 0:
            return 0
        return max(1, num_requests - self.drop_slowest)


# -- consistent-hash shard placement ----------------------------------------------


def _ring_digest(token: str) -> int:
    """Stable 64-bit position of ``token`` on the ring.

    BLAKE2b rather than the builtin ``hash``: placement must agree across
    processes (every router and node computes the same ring independently).
    """
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping keys to member nodes.

    Each node owns ``vnodes`` pseudo-random points on a 64-bit ring; a key is
    served by the first node point at or after the key's own position
    (wrapping).  The classic guarantees follow:

    * **bounded movement** — adding or removing one node only reassigns the
      keys that land on that node's arcs (an expected ``1/n`` fraction);
      every other key keeps its owner;
    * **balance** — with enough virtual nodes per member the arcs even out
      (the default 64 keeps the spread within a small factor).

    The ring is immutable; :meth:`with_node` / :meth:`without_node` derive
    the post-churn ring, which is how joins and leaves are modelled.
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = 64) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        unique = list(dict.fromkeys(nodes))
        if not unique:
            raise ValueError("HashRing needs at least one node")
        self._nodes = tuple(unique)
        self._vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in unique:
            for replica in range(vnodes):
                points.append((_ring_digest(f"{node}#{replica}"), node))
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    @property
    def nodes(self) -> tuple[str, ...]:
        """Member nodes, in insertion order."""
        return self._nodes

    @property
    def vnodes(self) -> int:
        """Virtual points per member node."""
        return self._vnodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def with_node(self, node: str) -> "HashRing":
        """The ring after ``node`` joins (no-op if already a member)."""
        if node in self._nodes:
            return self
        return HashRing([*self._nodes, node], vnodes=self._vnodes)

    def without_node(self, node: str) -> "HashRing":
        """The ring after ``node`` leaves.

        Raises ``ValueError`` when removing the last member — an empty ring
        can place nothing.
        """
        remaining = [member for member in self._nodes if member != node]
        if not remaining:
            raise ValueError("cannot remove the last node from a HashRing")
        return HashRing(remaining, vnodes=self._vnodes)

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (the first replica)."""
        return self.replicas_for(key, 1)[0]

    def replicas_for(self, key: str, count: int) -> list[str]:
        """The ordered replica set for ``key``: ``count`` *distinct* nodes.

        Walks the ring clockwise from the key's position, collecting each
        distinct node once, so replica 0 is the consistent-hash owner and
        later replicas are its ring successors.  ``count`` is capped at the
        member count (a 2-node ring cannot hold 3 distinct replicas).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._positions, _ring_digest(key))
        replicas: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._points)):
            _, node = self._points[(start + step) % len(self._points)]
            if node not in seen:
                seen.add(node)
                replicas.append(node)
                if len(replicas) == count:
                    break
        return replicas


def place_replicas(
    keys: Sequence[str], ring: HashRing, replication_factor: int = 1
) -> dict[str, list[str]]:
    """Place every key on its ordered replica set.

    The bulk form of :meth:`HashRing.replicas_for`, used by the cluster
    topology to compute one shard→nodes map per index.
    """
    return {key: ring.replicas_for(key, replication_factor) for key in keys}
