"""Regular-expression search accelerated by the IoU Sketch (Section IV-F).

RegEx engines built on inverted indexes (e.g., Google Code Search style
trigram indexes) use the index as a *filter*: literal fragments that every
match must contain are looked up first, and only the candidate documents are
scanned with the full regular expression.  False positives in the candidate
set do not affect correctness because the final regex match removes them —
exactly the property IoU Sketch already relies on.

:class:`RegexSearcher` applies the same idea at word granularity: it extracts
the literal words that any match must contain, runs an AND query over them
through the sketch, and then evaluates the regex against the fetched
documents.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

from repro.parsing.documents import Document
from repro.search.boolean import And, BooleanQuery, Term
from repro.search.results import SearchResult
from repro.search.searcher import AirphantSearcher

if TYPE_CHECKING:  # pragma: no cover - avoids a runtime import cycle
    from repro.search.multi import MultiIndexSearcher

#: Regex metacharacters that end a literal run.
_META_CHARACTERS = set(".^$*+?{}[]\\|()")


def extract_required_terms(pattern: str, min_length: int = 2) -> list[str]:
    """Extract literal *words* that every match of ``pattern`` must contain.

    Because the sketch indexes whitespace-delimited keywords, a literal run is
    only usable as an index filter when the pattern guarantees it appears as a
    standalone word: the run must be delimited on both sides by whitespace
    (a literal space, ``\\s``, or an anchor / string boundary) and must not be
    made optional by a following ``?``, ``*`` or ``{0,`` quantifier.  Patterns
    containing a top-level alternation, or whose matches cannot be pinned to
    any whole literal word, yield an empty list — in which case index
    acceleration is impossible and the searcher refuses the query.
    """
    if "|" in pattern:
        # A top-level alternation means no single literal is required.  A
        # full implementation would intersect the alternatives' literals; we
        # conservatively give up (the searcher then refuses the query).
        return []
    literals: list[str] = []
    current: list[str] = []
    starts_at_boundary = True
    index = 0

    def flush(ends_at_boundary: bool) -> None:
        nonlocal starts_at_boundary
        word = "".join(current)
        if starts_at_boundary and ends_at_boundary and len(word) >= min_length:
            literals.append(word)
        current.clear()

    while index < len(pattern):
        char = pattern[index]
        next_char = pattern[index + 1] if index + 1 < len(pattern) else ""
        if char == "\\":
            # \s is a whitespace class (a word boundary); every other escape
            # is some non-whitespace class or escaped metacharacter.  A '+'
            # quantifier keeps \s a guaranteed boundary; '*' or '?' make the
            # whitespace optional and therefore not a boundary.
            following = pattern[index + 2] if index + 2 < len(pattern) else ""
            is_whitespace_class = next_char == "s" and following not in {"*", "?"}
            flush(ends_at_boundary=is_whitespace_class)
            starts_at_boundary = is_whitespace_class
            index += 2
            if next_char == "s" and following == "+":
                index += 1
            continue
        if char == "[":
            # A character class matches many alternatives; skip it entirely.
            flush(ends_at_boundary=False)
            starts_at_boundary = False
            closing = pattern.find("]", index + 1)
            index = len(pattern) if closing == -1 else closing + 1
            continue
        if char in {"^", "$"}:
            # Anchors are boundaries but contribute no characters.
            flush(ends_at_boundary=True)
            starts_at_boundary = True
            index += 1
            continue
        if char.isspace():
            flush(ends_at_boundary=True)
            starts_at_boundary = True
            index += 1
            continue
        if char in _META_CHARACTERS:
            flush(ends_at_boundary=False)
            starts_at_boundary = False
            index += 1
            continue
        if next_char in {"?", "*"} or (next_char == "{" and pattern[index + 1 :].startswith("{0")):
            # This character is optional; it ends (and invalidates) the run.
            flush(ends_at_boundary=False)
            starts_at_boundary = False
            index += 2
            continue
        current.append(char)
        index += 1
    flush(ends_at_boundary=True)
    return literals


@dataclass
class RegexSearcher:
    """Regex queries over an Airphant index.

    Parameters
    ----------
    searcher:
        An initialized :class:`AirphantSearcher` (or
        :class:`~repro.search.multi.MultiIndexSearcher` — anything with a
        ``search_boolean`` method works).
    min_literal_length:
        Minimum length of extracted literal words used for filtering.
    """

    searcher: Union[AirphantSearcher, "MultiIndexSearcher"]
    min_literal_length: int = 2

    def search(self, pattern: str, top_k: int | None = None) -> SearchResult:
        """Return documents whose text matches ``pattern``.

        Raises ``ValueError`` if no literal word can be extracted from the
        pattern (the index cannot accelerate such a query; a full corpus scan
        would be required).
        """
        literals = extract_required_terms(pattern, self.min_literal_length)
        if not literals:
            raise ValueError(
                f"pattern {pattern!r} has no required literal terms; "
                "index-accelerated regex search is not possible"
            )
        filter_query: BooleanQuery = (
            Term(literals[0]) if len(literals) == 1 else And(*(Term(word) for word in literals))
        )
        candidate_result = self.searcher.search_boolean(filter_query, top_k=None)
        compiled = re.compile(pattern)
        # Candidates were already fetched and term-filtered; re-filter by regex.
        matched: list[Document] = [
            document
            for document in candidate_result.documents
            if compiled.search(document.text) is not None
        ]
        if top_k is not None:
            matched = matched[:top_k]
        return SearchResult(
            query=pattern,
            documents=matched,
            candidate_postings=candidate_result.candidate_postings,
            false_positive_count=candidate_result.false_positive_count
            + (len(candidate_result.documents) - len(matched)),
            latency=candidate_result.latency,
        )
