"""BM25 top-k ranked retrieval over Airphant indexes.

``mode="topk_bm25"`` keeps the membership machinery intact and layers
scoring on top of it:

1. **candidates** come from the superposts exactly like a keyword query
   (every member's per-word layer intersections, unioned across shards) — a
   slight superset of the true matches;
2. **scores** come from the persisted :mod:`~repro.index.stats` blob:
   ``score(d) = Σ_t w_t · idf(t) · tf(t,d)·(k1+1) / (tf(t,d) + k1·(1 − b +
   b·|d|/avgdl))`` with the classic ``k1 = 1.2``, ``b = 0.75`` defaults and
   optional per-term field weights ``w_t``.  Because the stats are exact, a
   candidate with ``tf = 0`` for any query term is provably a false positive
   (or a partial match) and is dropped *without fetching its text* — ranked
   queries retrieve document bytes only for the final top-k;
3. **normalization** divides by the query's supremum score
   ``Σ_t w_t · idf(t) · (k1+1)`` (the tf saturation term is strictly below
   ``k1+1``), so every score lands in ``[0, 1)`` and scores are comparable
   across queries;
4. **merging** is deterministic: ties break on the posting's
   ``(blob, offset, length)`` order, so repeated runs, rebuilt indexes,
   sharded fan-outs, and routed clusters all produce the identical ranked
   list.

Cross-tier identity hinges on one invariant: *every* execution scores with
the same corpus-wide statistics.  Members therefore expose their exact
stats contribution (:meth:`ranking_stats`), the executor merges them by
posting (so a document counts once even if it is transiently visible in two
members mid-flush), and a shard-restricted view still reports its *full*
index stats — a node answering shards {2,3} uses the same IDF as the node
answering {0,1}, which is what makes routed answers byte-identical to
single-node ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

from repro.core.superpost import Superpost
from repro.index.stats import IndexStats, idf, merge_stats
from repro.observability.tracing import span
from repro.parsing.documents import Document, Posting
from repro.search.results import LatencyBreakdown, SearchResult

#: Default ranked result count when neither the request nor the service
#: config pins one (the "bounded k" contract: ranked queries never return
#: the whole candidate set).
DEFAULT_RANKED_K = 10

#: Hard ceiling on ranked k — scoring is in-memory, but document retrieval
#: for the final list is not, and an unbounded k defeats the mode's point.
MAX_RANKED_K = 10_000


@dataclass(frozen=True)
class BM25Params:
    """The two BM25 free parameters (paper-classic defaults)."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError(f"k1 must be non-negative, got {self.k1}")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError(f"b must be within [0, 1], got {self.b}")


@dataclass(frozen=True)
class ScoredHit:
    """One ranked result: the document reference plus its normalized score."""

    posting: Posting
    score: float


class RankedMember(Protocol):
    """What :func:`execute_topk` needs from each member searcher.

    Implemented by :class:`~repro.search.searcher.AirphantSearcher` (hence
    :class:`~repro.search.sharded.ShardedSearcher` and its shard-restricted
    views) and :class:`~repro.ingest.memtable.MemtableSearcher`, so the
    combined live view ranks memtable ∪ deltas ∪ base with no special cases.
    """

    def ranking_stats(self) -> IndexStats:
        """This member's exact stats contribution (may raise
        :class:`~repro.index.stats.RankingUnsupportedError`)."""
        ...

    def ranked_candidates(
        self, words: Sequence[str], latency: LatencyBreakdown
    ) -> Superpost:
        """Conjunctive candidate postings for ``words`` (membership superset)."""
        ...

    def fetch_documents(
        self, postings: Sequence[Posting], latency: LatencyBreakdown
    ) -> list[Document]:
        """Retrieve document text for ``postings`` (one batch, no filtering)."""
        ...


def normalize_weights(
    words: Sequence[str], weights: Mapping[str, float] | None
) -> dict[str, float]:
    """Per-term weights for ``words`` (1.0 where unspecified)."""
    if not weights:
        return {word: 1.0 for word in words}
    return {word: float(weights.get(word, 1.0)) for word in words}


def score_posting(
    posting: Posting,
    words: Sequence[str],
    term_frequencies: Mapping[str, Mapping[Posting, int]],
    doc_lengths: Mapping[Posting, int],
    idf_by_word: Mapping[str, float],
    weights: Mapping[str, float],
    params: BM25Params,
    avg_doc_length: float,
    max_score: float,
) -> float | None:
    """Normalized BM25 score of one candidate, or ``None`` to drop it.

    ``None`` means the exact stats refute the candidate: it misses at least
    one query term (a sketch false positive, or a partial match under the
    conjunctive contract), or it is unknown to the stats entirely.
    """
    doc_length = doc_lengths.get(posting)
    if doc_length is None:
        return None
    if avg_doc_length > 0:
        norm = 1.0 - params.b + params.b * (doc_length / avg_doc_length)
    else:
        norm = 1.0
    score = 0.0
    for word in words:
        tf = term_frequencies[word].get(posting, 0)
        if tf == 0:
            return None
        score += (
            weights[word]
            * idf_by_word[word]
            * (tf * (params.k1 + 1.0))
            / (tf + params.k1 * norm)
        )
    if max_score <= 0.0 or not math.isfinite(max_score):
        return 0.0
    # At k1 = 0 the saturation term attains its supremum exactly and float
    # rounding can land a hair above 1.0; clamp to keep the [0, 1] contract.
    return min(score / max_score, 1.0)


def execute_topk(
    members: Sequence[RankedMember],
    words: Sequence[str],
    label: str,
    k: int,
    params: BM25Params | None = None,
    weights: Mapping[str, float] | None = None,
) -> SearchResult:
    """Run one BM25 top-k query over ``members`` and merge deterministically.

    The shared flow behind every execution tier: a standalone searcher, a
    sharded index, the live memtable ∪ deltas ∪ base view, and each node of
    a routed cluster all funnel through here, which is what keeps their
    ranked lists identical.

    Raises :class:`~repro.index.stats.RankingUnsupportedError` if any member
    index lacks ranking statistics, and ``ValueError`` for an invalid ``k``.
    """
    if k <= 0:
        raise ValueError(f"ranked queries need a positive k, got {k}")
    k = min(k, MAX_RANKED_K)
    params = params if params is not None else BM25Params()
    if not words:
        return SearchResult(query=label, scores=[])

    # Corpus-wide statistics, merged by posting so overlapping members (a
    # document mid-flush) never double-count.
    with span("rank.stats", members=len(members)):
        member_stats = [member.ranking_stats() for member in members]
    merged = merge_stats(member_stats)
    avg_doc_length = merged.average_length
    idf_by_word = {
        word: idf(merged.num_documents, merged.doc_frequency(word)) for word in words
    }
    weight_by_word = normalize_weights(words, weights)
    max_score = sum(
        weight_by_word[word] * idf_by_word[word] * (params.k1 + 1.0) for word in words
    )
    term_frequencies = {
        word: merged.term_frequencies.get(word, {}) for word in words
    }

    # Candidates per member (their superpost intersections), scored against
    # the *global* statistics.  Latencies merge with the multi-index
    # convention: members proceed in parallel (max) while bytes and round
    # trips are real work (sum).
    member_latencies: list[LatencyBreakdown] = []
    candidate_postings: list[Posting] = []
    candidate_seen: set[Posting] = set()
    scored: dict[Posting, tuple[float, int]] = {}
    with span("rank.score", k=k, words=list(words)) as score_span:
        for member_index, member in enumerate(members):
            member_latency = LatencyBreakdown()
            candidates = member.ranked_candidates(words, member_latency)
            member_latencies.append(member_latency)
            for posting in candidates.sorted_postings():
                if posting in candidate_seen:
                    continue
                candidate_seen.add(posting)
                candidate_postings.append(posting)
                score = score_posting(
                    posting,
                    words,
                    term_frequencies,
                    merged.doc_lengths,
                    idf_by_word,
                    weight_by_word,
                    params,
                    avg_doc_length,
                    max_score,
                )
                if score is not None:
                    scored[posting] = (score, member_index)
        # Candidates the exact statistics disprove (tf == 0 or unknown doc)
        # are refuted without ever fetching their bytes.
        score_span.set(
            candidates=len(candidate_postings),
            refuted=len(candidate_postings) - len(scored),
        )

    ranked = sorted(scored.items(), key=lambda item: (-item[1][0], item[0]))[:k]

    # Retrieve text only for the winners, each posting through the member
    # that produced it (the memtable answers from memory, persisted members
    # batch range reads through their pipelines).
    retrieval_latencies: list[LatencyBreakdown] = []
    documents_by_posting: dict[Posting, Document] = {}
    for member_index, member in enumerate(members):
        wanted = [
            posting
            for posting, (_, owner) in ranked
            if owner == member_index
        ]
        if not wanted:
            continue
        retrieval_latency = LatencyBreakdown()
        for document in member.fetch_documents(wanted, retrieval_latency):
            documents_by_posting[document.ref] = document
        retrieval_latencies.append(retrieval_latency)

    documents: list[Document] = []
    scores: list[float] = []
    for posting, (score, _) in ranked:
        document = documents_by_posting.get(posting)
        if document is None:
            continue
        documents.append(document)
        scores.append(score)

    candidate_postings.sort()
    return SearchResult(
        query=label,
        documents=documents,
        scores=scores,
        candidate_postings=candidate_postings,
        false_positive_count=len(candidate_postings) - len(scored),
        latency=_merge_latencies(member_latencies + retrieval_latencies),
    )


def _merge_latencies(latencies: Sequence[LatencyBreakdown]) -> LatencyBreakdown:
    """Parallel-member latency merge (max elapsed, summed bytes/trips)."""
    if not latencies:
        return LatencyBreakdown()
    return LatencyBreakdown(
        lookup_ms=max(latency.lookup_ms for latency in latencies),
        retrieval_ms=max(latency.retrieval_ms for latency in latencies),
        wait_ms=max(latency.wait_ms for latency in latencies),
        download_ms=sum(latency.download_ms for latency in latencies),
        bytes_fetched=sum(latency.bytes_fetched for latency in latencies),
        round_trips=sum(latency.round_trips for latency in latencies),
    )


__all__ = [
    "DEFAULT_RANKED_K",
    "MAX_RANKED_K",
    "BM25Params",
    "RankedMember",
    "ScoredHit",
    "execute_topk",
    "normalize_weights",
    "score_posting",
]
