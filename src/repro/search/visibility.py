"""Query-time delete visibility: the tombstone filter over any searcher tier.

Deletes are recorded as WAL tombstone records and applied *physically* only
at compaction (see :mod:`repro.ingest.wal`).  Until then, the persisted
tiers — delta indexes, the sharded base, cluster-routed shard views — still
contain the condemned documents.  :class:`TombstoneView` is the one piece of
plumbing that hides them: a transparent wrapper implementing the full member
contract of :class:`~repro.search.multi.MultiIndexSearcher`, filtering every
result surface (documents, candidates, postings, ranking statistics) against
the pending tombstone set.

Correctness of ranked retrieval is the subtle part.  BM25 scores depend on
corpus-wide aggregates (``N``, ``df``, ``avgdl``), so simply dropping deleted
documents from a ranked list would keep scoring the survivors against the
*pre-delete* corpus and break the cross-tier byte-identical-ranking
invariant.  The view therefore prunes the member's ranking statistics with
:func:`~repro.index.stats.prune_stats` — exact integer surgery, so the
merged statistics (and hence every score) equal a fresh rebuild over the
surviving documents.
"""

from __future__ import annotations

import dataclasses
from typing import AbstractSet, Any, Iterable, Sequence

from repro.core.superpost import Superpost
from repro.index.stats import IndexStats, prune_stats
from repro.observability.tracing import span
from repro.parsing.documents import Document, Posting
from repro.search.boolean import BooleanQuery
from repro.search.results import LatencyBreakdown, SearchResult


class TombstoneView:
    """A searcher member with the pending deletes filtered out.

    Wraps any member (a :class:`~repro.search.sharded.ShardedSearcher`, a
    restricted shard view, a memtable searcher) and delegates everything to
    it, excising documents whose references appear in ``tombstones`` from
    every query result.  Attribute access falls through to the wrapped
    member, so code inspecting ``_index_name`` or calling lifecycle methods
    keeps working unchanged.
    """

    def __init__(self, inner: Any, tombstones: AbstractSet[Posting]) -> None:
        self._inner = inner
        self._tombstones = frozenset(tombstones)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    @property
    def inner(self) -> Any:
        """The wrapped member."""
        return self._inner

    @property
    def tombstones(self) -> frozenset[Posting]:
        """The reference set this view hides."""
        return self._tombstones

    @property
    def _pre_excludes(self) -> bool:
        """Whether the wrapped member filters condemned postings pre-fetch.

        Index-backed members (:class:`AirphantSearcher` and subclasses)
        advertise ``SUPPORTS_EXCLUDE`` and drop condemned candidates before
        the document-fetch wave — their bytes are never requested.  Members
        without the flag (exact memtable searchers, whose deletes are
        already physical) fall back to over-fetch + post-filter.
        """
        return bool(self._tombstones) and getattr(
            self._inner, "SUPPORTS_EXCLUDE", False
        )

    # -- membership / boolean ------------------------------------------------------

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        """Keyword search with condemned documents removed."""
        with span("visibility.filter", tombstones=len(self._tombstones)):
            if self._pre_excludes:
                # The member skips condemned candidates before retrieval, so
                # top-k sampling stays effective and _filtered finds nothing
                # left to remove.
                result = self._inner.search(
                    query, top_k=top_k, exclude=self._tombstones
                )
            else:
                result = self._inner.search(query, top_k=self._inner_k(top_k))
            return self._filtered(result, top_k)

    def search_boolean(
        self, query: BooleanQuery | str, top_k: int | None = None
    ) -> SearchResult:
        """Boolean search with condemned documents removed."""
        with span("visibility.filter", tombstones=len(self._tombstones)):
            if self._pre_excludes:
                result = self._inner.search_boolean(
                    query, top_k=top_k, exclude=self._tombstones
                )
            else:
                result = self._inner.search_boolean(
                    query, top_k=self._inner_k(top_k)
                )
            return self._filtered(result, top_k)

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term lookup with condemned postings removed."""
        postings, latency = self._inner.lookup_postings(word)
        return [posting for posting in postings if posting not in self._tombstones], latency

    def _inner_k(self, top_k: int | None) -> int | None:
        # A member truncating to top_k *before* the filter could return
        # fewer than top_k survivors even though it holds more; ask for the
        # full result and truncate after filtering instead.
        return None if self._tombstones else top_k

    def _filtered(self, result: SearchResult, top_k: int | None) -> SearchResult:
        if not self._tombstones:
            return result
        documents = [
            document
            for document in result.documents
            if document.ref not in self._tombstones
        ]
        candidates = [
            posting
            for posting in result.candidate_postings
            if posting not in self._tombstones
        ]
        removed_candidates = len(result.candidate_postings) - len(candidates)
        removed_matches = len(result.documents) - len(documents)
        # Condemned candidates that were *not* matches were counted as false
        # positives by the member; they are no longer fetched-and-discarded
        # work attributable to the query, so the count shrinks with them.
        false_positives = max(
            0, result.false_positive_count - (removed_candidates - removed_matches)
        )
        if top_k is not None:
            documents = documents[:top_k]
        return dataclasses.replace(
            result,
            documents=documents,
            candidate_postings=candidates,
            false_positive_count=false_positives,
        )

    # -- ranked retrieval (member protocol of execute_topk) ------------------------

    def ranking_stats(self) -> IndexStats:
        """Member statistics with the condemned documents excised (exact)."""
        return prune_stats(self._inner.ranking_stats(), self._tombstones)

    def ranked_candidates(
        self, words: Sequence[str], latency: LatencyBreakdown
    ) -> Superpost:
        """Conjunctive candidates minus the condemned postings."""
        candidates = self._inner.ranked_candidates(words, latency)
        if not self._tombstones:
            return candidates
        return Superpost(set(candidates.postings) - self._tombstones)

    def fetch_documents(
        self, postings: Sequence[Posting], latency: LatencyBreakdown
    ) -> list[Document]:
        """Resolve postings, never fetching a condemned document's bytes."""
        surviving = [
            posting for posting in postings if posting not in self._tombstones
        ]
        skipped = len(postings) - len(surviving)
        if skipped:
            with span(
                "visibility.filter",
                tombstones=len(self._tombstones),
                excluded=skipped,
                refunded_bytes=sum(
                    posting.length
                    for posting in postings
                    if posting in self._tombstones
                ),
            ):
                return self._inner.fetch_documents(surviving, latency)
        return self._inner.fetch_documents(surviving, latency)


def apply_tombstones(
    members: Iterable[Any], tombstones: AbstractSet[Posting]
) -> list[Any]:
    """Wrap ``members`` in :class:`TombstoneView` when deletes are pending.

    With an empty tombstone set the members are returned as-is — the common
    case (no deletes outstanding) pays nothing.
    """
    if not tombstones:
        return list(members)
    return [TombstoneView(member, tombstones) for member in members]


__all__ = ["TombstoneView", "apply_tombstones"]
