"""Searching across several IoU Sketch indexes at once.

The paper targets read-oriented corpora and defers frequent updates to future
work.  The natural extension (implemented here together with
:mod:`repro.index.updates`) is append-only: new documents go into small
*delta* indexes built with the ordinary Builder, and queries fan out over the
base index plus all deltas.  Because each index answers with a single
parallel batch, querying several of them stays a constant number of
round-trip waves; results are merged and de-duplicated by document reference.
"""

from __future__ import annotations

from typing import Sequence

from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.boolean import BooleanQuery
from repro.search.ranking import BM25Params, execute_topk
from repro.search.replication import HedgingPolicy
from repro.search.results import LatencyBreakdown, SearchResult
from repro.search.sharded import ShardedSearcher
from repro.storage.base import ObjectStore


class MultiIndexSearcher:
    """Fans a query out over several Airphant indexes and merges the results.

    All constituent indexes must have been built over the same blob namespace
    (their postings reference documents by ``(blob, offset, length)``), which
    is exactly how the append-only update manager lays them out.

    Each member is opened as a :class:`~repro.search.sharded.ShardedSearcher`,
    so a member that happens to be sharded fans its reads across its shards
    in one coalescing batch, while plain indexes behave exactly as before.
    """

    def __init__(
        self,
        store: ObjectStore,
        index_names: Sequence[str],
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        hedging: HedgingPolicy | None = None,
        top_k_delta: float = 1e-6,
        query_cache_size: int = 0,
        coalesce_gap: int = 0,
        read_cache_bytes: int = 0,
    ) -> None:
        if not index_names:
            raise ValueError("MultiIndexSearcher needs at least one index")
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._searchers = [
            ShardedSearcher(
                store,
                index_name=name,
                tokenizer=tokenizer,
                max_concurrency=max_concurrency,
                hedging=hedging,
                top_k_delta=top_k_delta,
                query_cache_size=query_cache_size,
                coalesce_gap=coalesce_gap,
                read_cache_bytes=read_cache_bytes,
            )
            for name in index_names
        ]
        self.init_latency_ms = 0.0

    @classmethod
    def open(
        cls,
        store: ObjectStore,
        index_names: Sequence[str],
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        hedging: HedgingPolicy | None = None,
        top_k_delta: float = 1e-6,
        query_cache_size: int = 0,
        coalesce_gap: int = 0,
        read_cache_bytes: int = 0,
    ) -> "MultiIndexSearcher":
        """Create and initialize a searcher over ``index_names``."""
        searcher = cls(
            store,
            index_names,
            tokenizer=tokenizer,
            max_concurrency=max_concurrency,
            hedging=hedging,
            top_k_delta=top_k_delta,
            query_cache_size=query_cache_size,
            coalesce_gap=coalesce_gap,
            read_cache_bytes=read_cache_bytes,
        )
        searcher.initialize()
        return searcher

    @property
    def index_names(self) -> list[str]:
        """Names of the constituent indexes, in search order."""
        return [searcher._index_name for searcher in self._searchers]

    @property
    def searchers(self) -> list[ShardedSearcher]:
        """The per-index searchers (base first, then deltas)."""
        return list(self._searchers)

    def close(self) -> None:
        """Release every member searcher's fetcher pool and caches."""
        for searcher in self._searchers:
            searcher.close()

    def initialize(self) -> float:
        """Initialize every constituent index.

        Headers are independent, so a real deployment downloads them
        concurrently; the simulated init latency is therefore the maximum of
        the per-index init latencies.
        """
        latencies = [searcher.initialize() for searcher in self._searchers]
        self.init_latency_ms = max(latencies) if latencies else 0.0
        return self.init_latency_ms

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        """Search every index and merge the matching documents.

        The per-index searches are independent, so the merged latency charges
        the *maximum* lookup/retrieval time across indexes (they proceed in
        parallel) while bytes and round-trips are summed.
        """
        per_index = [searcher.search(query, top_k=top_k) for searcher in self._searchers]
        return self._merge(query, per_index, top_k)

    def search_boolean(
        self, query: BooleanQuery | str, top_k: int | None = None
    ) -> SearchResult:
        """Execute a Boolean query (AND/OR tree) over every index and merge."""
        per_index = [
            searcher.search_boolean(query, top_k=top_k) for searcher in self._searchers
        ]
        label = per_index[0].query if per_index else ""
        return self._merge(label, per_index, top_k)

    def search_topk(
        self,
        query: str,
        k: int,
        weights: dict[str, float] | None = None,
        params: BM25Params | None = None,
    ) -> SearchResult:
        """BM25 top-k over the union of all member indexes.

        Every member contributes its exact ranking statistics; the executor
        merges them by posting (a document transiently visible in two members
        mid-flush counts once) and scores all members' candidates against the
        merged, corpus-wide statistics — so the ranked list matches what a
        fresh single-index rebuild over the same documents would return.
        """
        words = list(dict.fromkeys(self._tokenizer.tokenize(query)))
        return execute_topk(
            list(self._searchers), words, query, k, params=params, weights=weights
        )

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup across all indexes, merged and de-duplicated.

        Per-index lookups are independent parallel batches, so the merged
        latency charges the maximum lookup time while summing bytes and
        round-trips (the same accounting as :meth:`search`).
        """
        per_index = [searcher.lookup_postings(word) for searcher in self._searchers]
        merged_latency = LatencyBreakdown(
            lookup_ms=max(latency.lookup_ms for _, latency in per_index),
            wait_ms=max(latency.wait_ms for _, latency in per_index),
            download_ms=sum(latency.download_ms for _, latency in per_index),
            bytes_fetched=sum(latency.bytes_fetched for _, latency in per_index),
            round_trips=sum(latency.round_trips for _, latency in per_index),
        )
        seen: set[Posting] = set()
        postings: list[Posting] = []
        for per_index_postings, _ in per_index:
            for posting in per_index_postings:
                if posting not in seen:
                    seen.add(posting)
                    postings.append(posting)
        return postings, merged_latency

    def _merge(
        self, query: str, results: Sequence[SearchResult], top_k: int | None
    ) -> SearchResult:
        merged_latency = LatencyBreakdown(
            lookup_ms=max(result.latency.lookup_ms for result in results),
            retrieval_ms=max(result.latency.retrieval_ms for result in results),
            wait_ms=max(result.latency.wait_ms for result in results),
            download_ms=sum(result.latency.download_ms for result in results),
            bytes_fetched=sum(result.latency.bytes_fetched for result in results),
            round_trips=sum(result.latency.round_trips for result in results),
        )
        seen = set()
        documents: list[Document] = []
        for result in results:
            for document in result.documents:
                if document.ref not in seen:
                    seen.add(document.ref)
                    documents.append(document)
        if top_k is not None:
            documents = documents[:top_k]
        candidates = []
        candidate_seen = set()
        for result in results:
            for posting in result.candidate_postings:
                if posting not in candidate_seen:
                    candidate_seen.add(posting)
                    candidates.append(posting)
        return SearchResult(
            query=query,
            documents=documents,
            candidate_postings=candidates,
            false_positive_count=sum(result.false_positive_count for result in results),
            latency=merged_latency,
        )
