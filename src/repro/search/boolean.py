"""Boolean query support (Section IV-F).

IoU Sketch generalizes to Boolean queries the same way an inverted index
does: the query operator distributes over term lookups,
``Q(⋁_i ⋀_j w_ij) = ⋃_i ⋂_j Q(w_ij)``.  Intersections reduce false positives
and unions add them; the final document fetch filters whatever remains, so
correctness is unaffected.

The module provides a tiny query tree (:class:`Term`, :class:`And`,
:class:`Or`) plus a parser for a conventional textual syntax
(``error AND (timeout OR refused)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable

from repro.core.superpost import Superpost


class BooleanQuery(ABC):
    """A node of a Boolean query tree over keywords."""

    @abstractmethod
    def terms(self) -> set[str]:
        """All keywords referenced anywhere in the query."""

    @abstractmethod
    def candidates(self, lookup: Callable[[str], Superpost]) -> Superpost:
        """Candidate postings, distributing the query over per-term lookups."""

    @abstractmethod
    def matches(self, document_terms: set[str]) -> bool:
        """Exact predicate used to filter fetched documents."""


@dataclass(frozen=True)
class Term(BooleanQuery):
    """A single keyword."""

    word: str

    def terms(self) -> set[str]:
        return {self.word}

    def candidates(self, lookup: Callable[[str], Superpost]) -> Superpost:
        return lookup(self.word)

    def matches(self, document_terms: set[str]) -> bool:
        return self.word in document_terms


@dataclass(frozen=True)
class And(BooleanQuery):
    """Conjunction of sub-queries."""

    children: tuple[BooleanQuery, ...]

    def __init__(self, *children: BooleanQuery):
        if not children:
            raise ValueError("And requires at least one child")
        object.__setattr__(self, "children", tuple(children))

    def terms(self) -> set[str]:
        return set().union(*(child.terms() for child in self.children))

    def candidates(self, lookup: Callable[[str], Superpost]) -> Superpost:
        return Superpost.intersect_all(child.candidates(lookup) for child in self.children)

    def matches(self, document_terms: set[str]) -> bool:
        return all(child.matches(document_terms) for child in self.children)


@dataclass(frozen=True)
class Or(BooleanQuery):
    """Disjunction of sub-queries."""

    children: tuple[BooleanQuery, ...]

    def __init__(self, *children: BooleanQuery):
        if not children:
            raise ValueError("Or requires at least one child")
        object.__setattr__(self, "children", tuple(children))

    def terms(self) -> set[str]:
        return set().union(*(child.terms() for child in self.children))

    def candidates(self, lookup: Callable[[str], Superpost]) -> Superpost:
        return Superpost.union_all(child.candidates(lookup) for child in self.children)

    def matches(self, document_terms: set[str]) -> bool:
        return any(child.matches(document_terms) for child in self.children)


def parse_boolean_query(text: str) -> BooleanQuery:
    """Parse ``"a AND (b OR c)"`` style syntax into a query tree.

    Grammar (case-insensitive operators, AND binds tighter than OR)::

        query  := andExpr (OR andExpr)*
        andExpr := atom (AND atom)*
        atom   := WORD | '(' query ')'

    Bare adjacency (``"a b"``) is treated as AND, matching the behaviour of
    :meth:`AirphantSearcher.search` on multi-word query strings.
    """
    tokens = _tokenize(text)
    parser = _Parser(tokens)
    query = parser.parse_or()
    parser.expect_end()
    return query


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    for fragment in text.replace("(", " ( ").replace(")", " ) ").split():
        tokens.append(fragment)
    if not tokens:
        raise ValueError("empty boolean query")
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> str:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def parse_or(self) -> BooleanQuery:
        children = [self.parse_and()]
        while self._peek() is not None and self._peek().upper() == "OR":
            self._advance()
            children.append(self.parse_and())
        if len(children) == 1:
            return children[0]
        return Or(*children)

    def parse_and(self) -> BooleanQuery:
        children = [self.parse_atom()]
        while True:
            token = self._peek()
            if token is None or token == ")" or token.upper() == "OR":
                break
            if token.upper() == "AND":
                self._advance()
                children.append(self.parse_atom())
            else:
                children.append(self.parse_atom())
        if len(children) == 1:
            return children[0]
        return And(*children)

    def parse_atom(self) -> BooleanQuery:
        token = self._peek()
        if token is None:
            raise ValueError("unexpected end of boolean query")
        if token == "(":
            self._advance()
            query = self.parse_or()
            if self._peek() != ")":
                raise ValueError("unbalanced parenthesis in boolean query")
            self._advance()
            return query
        if token == ")":
            raise ValueError("unexpected ')' in boolean query")
        if token.upper() in {"AND", "OR"}:
            raise ValueError(f"unexpected operator {token!r}")
        return Term(self._advance())

    def expect_end(self) -> None:
        if self._pos != len(self._tokens):
            raise ValueError(f"trailing tokens in boolean query: {self._tokens[self._pos:]}")
