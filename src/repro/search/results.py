"""Search results and latency accounting."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parsing.documents import Document, Posting


@dataclass
class LatencyBreakdown:
    """Simulated latency of one query, split the way the paper reports it.

    * ``lookup_ms`` — term-index lookup: fetching (and intersecting) the
      superposts, i.e., everything before document retrieval (Figure 14).
    * ``retrieval_ms`` — fetching candidate documents.
    * ``wait_ms`` / ``download_ms`` — the network-communication split of
      Figures 8 and 11 (time blocked on first bytes vs time receiving data),
      summed over both phases.
    """

    lookup_ms: float = 0.0
    retrieval_ms: float = 0.0
    wait_ms: float = 0.0
    download_ms: float = 0.0
    bytes_fetched: int = 0
    round_trips: int = 0

    @property
    def total_ms(self) -> float:
        """End-to-end simulated search latency."""
        return self.lookup_ms + self.retrieval_ms

    def add_lookup(self, elapsed_ms: float, wait_ms: float, download_ms: float, nbytes: int) -> None:
        """Account one lookup-phase batch."""
        self.lookup_ms += elapsed_ms
        self.wait_ms += wait_ms
        self.download_ms += download_ms
        self.bytes_fetched += nbytes
        self.round_trips += 1

    def add_retrieval(
        self, elapsed_ms: float, wait_ms: float, download_ms: float, nbytes: int
    ) -> None:
        """Account one document-retrieval batch."""
        self.retrieval_ms += elapsed_ms
        self.wait_ms += wait_ms
        self.download_ms += download_ms
        self.bytes_fetched += nbytes
        self.round_trips += 1


@dataclass
class SearchResult:
    """Outcome of one search query."""

    query: str
    documents: list[Document] = field(default_factory=list)
    candidate_postings: list[Posting] = field(default_factory=list)
    false_positive_count: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)

    @property
    def num_results(self) -> int:
        """Number of documents that truly match the query."""
        return len(self.documents)

    @property
    def num_candidates(self) -> int:
        """Number of candidate postings fetched before filtering."""
        return len(self.candidate_postings)

    @property
    def postings(self) -> list[Posting]:
        """Postings of the documents that truly match."""
        return [document.ref for document in self.documents]

    @property
    def latency_ms(self) -> float:
        """End-to-end simulated latency of this query."""
        return self.latency.total_ms
