"""Search results and latency accounting."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.parsing.documents import Document, Posting


@dataclass
class LatencyBreakdown:
    """Simulated latency of one query, split the way the paper reports it.

    * ``lookup_ms`` — term-index lookup: fetching (and intersecting) the
      superposts, i.e., everything before document retrieval (Figure 14).
    * ``retrieval_ms`` — fetching candidate documents.
    * ``wait_ms`` / ``download_ms`` — the network-communication split of
      Figures 8 and 11 (time blocked on first bytes vs time receiving data),
      summed over both phases.
    """

    lookup_ms: float = 0.0
    retrieval_ms: float = 0.0
    wait_ms: float = 0.0
    download_ms: float = 0.0
    bytes_fetched: int = 0
    round_trips: int = 0

    @property
    def total_ms(self) -> float:
        """End-to-end simulated search latency."""
        return self.lookup_ms + self.retrieval_ms

    def add_lookup(self, elapsed_ms: float, wait_ms: float, download_ms: float, nbytes: int) -> None:
        """Account one lookup-phase batch."""
        self.lookup_ms += elapsed_ms
        self.wait_ms += wait_ms
        self.download_ms += download_ms
        self.bytes_fetched += nbytes
        self.round_trips += 1

    def add_retrieval(
        self, elapsed_ms: float, wait_ms: float, download_ms: float, nbytes: int
    ) -> None:
        """Account one document-retrieval batch."""
        self.retrieval_ms += elapsed_ms
        self.wait_ms += wait_ms
        self.download_ms += download_ms
        self.bytes_fetched += nbytes
        self.round_trips += 1

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (includes the derived total)."""
        return {
            "lookup_ms": self.lookup_ms,
            "retrieval_ms": self.retrieval_ms,
            "wait_ms": self.wait_ms,
            "download_ms": self.download_ms,
            "bytes_fetched": self.bytes_fetched,
            "round_trips": self.round_trips,
            "total_ms": self.total_ms,
        }


@dataclass
class SearchResult:
    """Outcome of one search query."""

    query: str
    documents: list[Document] = field(default_factory=list)
    candidate_postings: list[Posting] = field(default_factory=list)
    false_positive_count: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    #: Ranked modes only: normalized BM25 scores aligned with ``documents``
    #: (best first).  ``None`` for membership/Boolean results.
    scores: list[float] | None = None

    @property
    def num_results(self) -> int:
        """Number of documents that truly match the query."""
        return len(self.documents)

    @property
    def num_candidates(self) -> int:
        """Number of candidate postings fetched before filtering."""
        return len(self.candidate_postings)

    @property
    def postings(self) -> list[Posting]:
        """Postings of the documents that truly match."""
        return [document.ref for document in self.documents]

    @property
    def latency_ms(self) -> float:
        """End-to-end simulated latency of this query."""
        return self.latency.total_ms

    def to_dict(self, include_text: bool = True) -> dict[str, Any]:
        """JSON-serializable representation of this result.

        The service layer's ``SearchResponse`` wire format embeds the same
        document and latency shapes, adding request context (index, mode).
        ``include_text`` drops the document bodies, leaving only their
        ``(blob, offset, length)`` references — useful when callers plan to
        range-read the documents themselves.
        """
        documents = []
        for position, document in enumerate(self.documents):
            entry: dict[str, Any] = {
                "blob": document.blob,
                "offset": document.offset,
                "length": document.length,
            }
            if self.scores is not None and position < len(self.scores):
                entry["score"] = self.scores[position]
            if include_text:
                entry["text"] = document.text
            documents.append(entry)
        return {
            "query": self.query,
            "num_results": self.num_results,
            "num_candidates": self.num_candidates,
            "false_positive_count": self.false_positive_count,
            "documents": documents,
            "latency": self.latency.to_dict(),
        }

    def to_json(self, include_text: bool = True, indent: int | None = None) -> str:
        """Serialize :meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(include_text=include_text), indent=indent)
