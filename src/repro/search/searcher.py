"""Airphant Searcher.

Query-time component (Figure 3, right half).  Initialization downloads the
header blob once and reconstructs the Multilayer Hash Table; every query then
performs:

1. hash the query word(s) through the MHT to collect superpost pointers;
2. fetch all required superposts in a *single batch of parallel range reads*;
3. intersect them into the final (slightly over-complete) postings list;
4. fetch the candidate documents in a second parallel batch (optionally only
   a top-K sample, Equation 6);
5. filter out false positives by checking the fetched text, restoring perfect
   precision.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.analysis import top_k_sample_size
from repro.core.mht import MultilayerHashTable
from repro.core.superpost import Superpost
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.metadata import IndexMetadata
from repro.index.serialization import StringTable, decode_superpost
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.boolean import BooleanQuery, Term, parse_boolean_query
from repro.search.replication import HedgingPolicy
from repro.search.results import LatencyBreakdown, SearchResult
from repro.storage.base import ObjectStore, RangeRead
from repro.storage.parallel import ParallelFetcher
from repro.storage.simulated import SimulatedCloudStore


class AirphantSearcher:
    """Answers keyword queries from a persisted IoU Sketch index."""

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "airphant-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        hedging: HedgingPolicy | None = None,
        top_k_delta: float = 1e-6,
        query_cache_size: int = 0,
    ) -> None:
        self._store = store
        self._index_name = index_name
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._fetcher = ParallelFetcher(store, max_concurrency=max_concurrency)
        self._hedging = hedging if hedging is not None else HedgingPolicy()
        self._top_k_delta = top_k_delta
        self._mht: MultilayerHashTable | None = None
        self._string_table: StringTable | None = None
        self._metadata: IndexMetadata | None = None
        self.init_latency_ms: float = 0.0
        # Optional per-word memoization of final postings lists (Section IV-A
        # suggests query caching to bound the worst-case deviation).  Valid
        # because the paper targets read-oriented corpora that rarely change.
        self._query_cache_size = max(0, query_cache_size)
        self._query_cache: OrderedDict[str, Superpost] = OrderedDict()
        self.cache_hits: int = 0
        self.cache_misses: int = 0

    # -- initialization -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        store: ObjectStore,
        index_name: str = "airphant-index",
        **kwargs: object,
    ) -> "AirphantSearcher":
        """Create a Searcher and immediately load the index header."""
        searcher = cls(store, index_name=index_name, **kwargs)  # type: ignore[arg-type]
        searcher.initialize()
        return searcher

    def initialize(self) -> float:
        """Download and decode the header blob; returns the simulated latency.

        Happens once per corpus (the MHT fits in a few MB of memory); all
        later queries reuse the in-memory MHT.
        """
        header_blob = f"{self._index_name}/{HEADER_BLOB_SUFFIX}"
        if isinstance(self._store, SimulatedCloudStore):
            data, record = self._store.timed_get(header_blob)
            self.init_latency_ms = record.total_ms
        else:
            data = self._store.get(header_blob)
            self.init_latency_ms = 0.0
        compacted = decode_header(data)
        self._mht = compacted.mht
        self._string_table = compacted.string_table
        self._metadata = compacted.metadata
        return self.init_latency_ms

    @property
    def is_initialized(self) -> bool:
        """Whether the index header has been loaded."""
        return self._mht is not None

    @property
    def metadata(self) -> IndexMetadata | None:
        """Metadata of the opened index (``None`` before initialization)."""
        return self._metadata

    @property
    def mht(self) -> MultilayerHashTable:
        """The in-memory Multilayer Hash Table."""
        self._require_initialized()
        assert self._mht is not None
        return self._mht

    # -- term-index lookup (superpost fetch + intersection) -------------------------

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup only: the final postings list for one keyword.

        This is the operation benchmarked against SQLite's B-tree in the
        paper's Figure 14 — everything up to (but excluding) document
        retrieval.
        """
        self._require_initialized()
        latency = LatencyBreakdown()
        candidates = self._lookup_terms([word], latency)
        return candidates.sorted_postings(), latency

    def _lookup_terms(self, words: list[str], latency: LatencyBreakdown) -> Superpost:
        """Fetch and intersect superposts for all ``words`` in one batch."""
        assert self._mht is not None and self._string_table is not None
        if self._query_cache_size > 0 and all(word in self._query_cache for word in words):
            # Memoized lookup: no storage traffic, no added latency.
            self.cache_hits += 1
            for word in words:
                self._query_cache.move_to_end(word)
            return Superpost.intersect_all(
                Superpost(set(self._query_cache[word].postings)) for word in words
            )
        if self._query_cache_size > 0:
            self.cache_misses += 1
        # Collect pointers per word, remembering which requests belong to whom.
        requests: list[RangeRead] = []
        word_layers: list[list[int]] = []  # request indexes per word
        word_is_doomed = [False] * len(words)
        for word_index, word in enumerate(words):
            pointers = self._mht.pointers_for(word)
            indexes: list[int] = []
            for pointer in pointers:
                if pointer.is_empty:
                    # An empty bin (or empty common-word list) forces an empty
                    # intersection for this word; no fetch needed.
                    word_is_doomed[word_index] = True
                    continue
                indexes.append(len(requests))
                requests.append(pointer.to_range_read())
            word_layers.append(indexes)

        if any(word_is_doomed):
            # Intersecting with an empty set yields an empty result; we still
            # fetch nothing and charge no latency, matching a real engine that
            # short-circuits on a missing term.
            return Superpost()

        if not requests:
            return Superpost()

        single_word_hedging = (
            self._hedging.enabled and len(words) == 1 and not self._mht.is_common(words[0])
        )
        if single_word_hedging:
            required = self._hedging.required_of(len(requests))
            fetch = self._fetcher.fetch_hedged(requests, required=required)
        else:
            fetch = self._fetcher.fetch(requests)
        latency.add_lookup(
            fetch.batch.total_ms, fetch.batch.wait_ms, fetch.batch.download_ms, fetch.batch.nbytes
        )

        per_word_results: list[Superpost] = []
        for word_index, word in enumerate(words):
            superposts: list[Superpost] = []
            for request_index in word_layers[word_index]:
                payload = fetch.payloads[request_index]
                if payload is None:
                    # Hedged-away straggler: skip this layer (superset remains valid).
                    continue
                superposts.append(decode_superpost(payload, self._string_table))
            if not superposts:
                per_word_results.append(Superpost())
            else:
                per_word_results.append(Superpost.intersect_all(superposts))
        for word, result in zip(words, per_word_results):
            self._remember_lookup(word, result)
        return Superpost.intersect_all(per_word_results)

    def _remember_lookup(self, word: str, result: Superpost) -> None:
        """Memoize a word's final postings list (bounded LRU)."""
        if self._query_cache_size <= 0:
            return
        self._query_cache[word] = Superpost(set(result.postings))
        self._query_cache.move_to_end(word)
        while len(self._query_cache) > self._query_cache_size:
            self._query_cache.popitem(last=False)

    # -- full searches ---------------------------------------------------------------

    def query_word(self, word: str, top_k: int | None = None) -> SearchResult:
        """Search for documents containing a single keyword."""
        return self._execute([word], Term(word), word, top_k)

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        """Search for documents containing *all* keywords of ``query``."""
        words = list(dict.fromkeys(self._tokenizer.tokenize(query)))
        if not words:
            return SearchResult(query=query)
        if len(words) == 1:
            return self.query_word(words[0], top_k=top_k)
        predicate = parse_boolean_query(" AND ".join(words))
        return self._execute(words, predicate, query, top_k)

    def search_boolean(
        self, query: BooleanQuery | str, top_k: int | None = None
    ) -> SearchResult:
        """Execute a Boolean query (AND/OR tree) over the index."""
        tree = parse_boolean_query(query) if isinstance(query, str) else query
        words = sorted(tree.terms())
        label = query if isinstance(query, str) else " ".join(words)
        return self._execute_boolean(words, tree, label, top_k)

    # -- execution helpers -------------------------------------------------------------

    def _execute(
        self,
        words: list[str],
        predicate: BooleanQuery,
        label: str,
        top_k: int | None,
    ) -> SearchResult:
        self._require_initialized()
        latency = LatencyBreakdown()
        candidates = self._lookup_terms(words, latency)
        return self._retrieve_and_filter(candidates, predicate, label, top_k, latency)

    def _execute_boolean(
        self,
        words: list[str],
        tree: BooleanQuery,
        label: str,
        top_k: int | None,
    ) -> SearchResult:
        self._require_initialized()
        latency = LatencyBreakdown()
        # Fetch every referenced term's superposts in one batch, then let the
        # query tree combine the per-term candidate sets.
        per_word: dict[str, Superpost] = {}
        for word in words:
            per_word[word] = self._lookup_terms([word], latency)
        candidates = tree.candidates(lambda word: per_word[word])
        return self._retrieve_and_filter(candidates, tree, label, top_k, latency)

    def _retrieve_and_filter(
        self,
        candidates: Superpost,
        predicate: BooleanQuery,
        label: str,
        top_k: int | None,
        latency: LatencyBreakdown,
    ) -> SearchResult:
        candidate_postings = candidates.sorted_postings()
        if not candidate_postings:
            return SearchResult(query=label, candidate_postings=[], latency=latency)

        expected_fp = (
            self._metadata.expected_false_positives if self._metadata is not None else 0.0
        )
        to_fetch = candidate_postings
        if top_k is not None and top_k > 0:
            sample_size = top_k_sample_size(
                top_k, len(candidate_postings), expected_fp, self._top_k_delta
            )
            to_fetch = candidate_postings[:sample_size]

        matched, fetched_count = self._fetch_and_filter(to_fetch, predicate, latency)
        if top_k is not None and len(matched) < top_k and len(to_fetch) < len(candidate_postings):
            # The probabilistic sample came up short (probability <= delta);
            # fall back to fetching the remaining candidates.
            remainder = candidate_postings[len(to_fetch) :]
            more, more_count = self._fetch_and_filter(remainder, predicate, latency)
            matched.extend(more)
            fetched_count += more_count
        if top_k is not None:
            matched = matched[:top_k]

        return SearchResult(
            query=label,
            documents=matched,
            candidate_postings=candidate_postings,
            false_positive_count=fetched_count - len(matched),
            latency=latency,
        )

    def _fetch_and_filter(
        self,
        postings: list[Posting],
        predicate: BooleanQuery,
        latency: LatencyBreakdown,
    ) -> tuple[list[Document], int]:
        """Fetch documents for ``postings`` and keep only true matches."""
        if not postings:
            return [], 0
        requests = [posting.to_range_read() for posting in postings]
        fetch = self._fetcher.fetch(requests)
        latency.add_retrieval(
            fetch.batch.total_ms, fetch.batch.wait_ms, fetch.batch.download_ms, fetch.batch.nbytes
        )
        matched: list[Document] = []
        for posting, payload in zip(postings, fetch.payloads):
            if payload is None:
                continue
            text = payload.decode("utf-8", errors="replace")
            document = Document(ref=posting, text=text)
            if predicate.matches(self._tokenizer.distinct_terms(text)):
                matched.append(document)
        return matched, len(postings)

    def _require_initialized(self) -> None:
        if self._mht is None:
            raise RuntimeError(
                "Searcher is not initialized; call initialize() or AirphantSearcher.open()"
            )
