"""Airphant Searcher.

Query-time component (Figure 3, right half).  Initialization downloads the
header blob once and reconstructs the Multilayer Hash Table; every query then
performs:

1. hash the query word(s) through the MHT to collect superpost pointers;
2. fetch all required superposts in a *single batch of parallel range reads*;
3. intersect them into the final (slightly over-complete) postings list;
4. fetch the candidate documents in a second parallel batch (optionally only
   a top-K sample, Equation 6);
5. filter out false positives by checking the fetched text, restoring perfect
   precision.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Set as AbstractSet

from repro.core.analysis import top_k_sample_size
from repro.core.mht import MultilayerHashTable
from repro.core.superpost import Superpost
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.metadata import IndexMetadata
from repro.index.serialization import FORMAT_V1, StringTable, decode_superpost
from repro.index.stats import (
    IndexStats,
    RankingUnsupportedError,
    decode_stats,
    stats_blob_name,
)
from repro.observability.tracing import span
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.boolean import BooleanQuery, Term, parse_boolean_query
from repro.search.ranking import BM25Params, execute_topk
from repro.search.replication import HedgingPolicy
from repro.search.results import LatencyBreakdown, SearchResult
from repro.storage.base import ObjectStore, RangeRead
from repro.storage.parallel import ParallelFetcher
from repro.storage.pipeline import ReadPipeline
from repro.storage.simulated import SimulatedCloudStore


class _StatsCache:
    """Lazily-loaded ranking statistics, shared across searcher views.

    A mutable holder (rather than a plain attribute) so that shard-restricted
    copies of a :class:`~repro.search.sharded.ShardedSearcher` — created with
    ``copy.copy`` — keep pointing at the *same* cache: whichever view loads
    the stats first, every view scores with the identical full-corpus
    statistics afterwards.
    """

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.stats: IndexStats | None = None


class AirphantSearcher:
    """Answers keyword queries from a persisted IoU Sketch index.

    All lookup and document-fetch batches go through a
    :class:`~repro.storage.pipeline.ReadPipeline`, which deduplicates and
    coalesces the batch's range reads (and, when ``read_cache_bytes`` is set,
    serves repeats from a bounded block cache) before the parallel fetcher
    touches the store.  Hedged lookups bypass the pipeline: hedging reasons
    about individual request latencies, which coalescing would merge away.
    """

    #: Membership queries accept an ``exclude`` set of condemned postings and
    #: drop them *before* the document-fetch wave.  Wrappers (TombstoneView)
    #: probe this flag: members without it (exact memtable searchers, whose
    #: deletes are physical) keep the over-fetch + post-filter fallback.
    SUPPORTS_EXCLUDE = True

    def __init__(
        self,
        store: ObjectStore,
        index_name: str = "airphant-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        hedging: HedgingPolicy | None = None,
        top_k_delta: float = 1e-6,
        query_cache_size: int = 0,
        coalesce_gap: int = 0,
        read_cache_bytes: int = 0,
    ) -> None:
        self._store = store
        self._index_name = index_name
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._fetcher = ParallelFetcher(store, max_concurrency=max_concurrency)
        self._pipeline = ReadPipeline(
            self._fetcher, max_gap=coalesce_gap, cache_bytes=read_cache_bytes
        )
        self._hedging = hedging if hedging is not None else HedgingPolicy()
        self._top_k_delta = top_k_delta
        self._mht: MultilayerHashTable | None = None
        self._string_table: StringTable | None = None
        self._metadata: IndexMetadata | None = None
        self._format_version: int = FORMAT_V1
        self.init_latency_ms: float = 0.0
        # Optional per-word memoization of final postings lists (Section IV-A
        # suggests query caching to bound the worst-case deviation).  Valid
        # because the paper targets read-oriented corpora that rarely change.
        self._query_cache_size = max(0, query_cache_size)
        self._query_cache: OrderedDict[str, Superpost] = OrderedDict()
        # The cache is shared across server threads (ThreadingHTTPServer);
        # guard its mutations so LRU bookkeeping stays consistent.
        self._cache_lock = threading.Lock()
        self.cache_hits: int = 0
        self.cache_misses: int = 0
        # Ranking statistics (mode="topk_bm25") load lazily on the first
        # ranked query — membership-only workloads never pay for them.
        self._stats_cache = _StatsCache()
        self.stats_load_ms: float = 0.0

    # -- initialization -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        store: ObjectStore,
        index_name: str = "airphant-index",
        tokenizer: Tokenizer | None = None,
        max_concurrency: int = 32,
        hedging: HedgingPolicy | None = None,
        top_k_delta: float = 1e-6,
        query_cache_size: int = 0,
        coalesce_gap: int = 0,
        read_cache_bytes: int = 0,
    ) -> "AirphantSearcher":
        """Create a Searcher and immediately load the index header."""
        searcher = cls(
            store,
            index_name=index_name,
            tokenizer=tokenizer,
            max_concurrency=max_concurrency,
            hedging=hedging,
            top_k_delta=top_k_delta,
            query_cache_size=query_cache_size,
            coalesce_gap=coalesce_gap,
            read_cache_bytes=read_cache_bytes,
        )
        searcher.initialize()
        return searcher

    @property
    def pipeline(self) -> ReadPipeline:
        """The read pipeline every lookup/retrieval batch goes through."""
        return self._pipeline

    def close(self) -> None:
        """Release the fetcher's thread pool and the pipeline's block cache."""
        self._pipeline.close()

    def initialize(self) -> float:
        """Download and decode the header blob; returns the simulated latency.

        Happens once per corpus (the MHT fits in a few MB of memory); all
        later queries reuse the in-memory MHT.
        """
        header_blob = f"{self._index_name}/{HEADER_BLOB_SUFFIX}"
        if isinstance(self._store, SimulatedCloudStore):
            data, record = self._store.timed_get(header_blob)
            self.init_latency_ms = record.total_ms
        else:
            data = self._store.get(header_blob)
            self.init_latency_ms = 0.0
        compacted = decode_header(data)
        self._mht = compacted.mht
        self._string_table = compacted.string_table
        self._metadata = compacted.metadata
        # The header names the superpost codec; dispatching on it here is what
        # keeps v1 indexes readable forever.
        self._format_version = compacted.format_version
        return self.init_latency_ms

    @property
    def is_initialized(self) -> bool:
        """Whether the index header has been loaded."""
        return self._mht is not None

    @property
    def metadata(self) -> IndexMetadata | None:
        """Metadata of the opened index (``None`` before initialization)."""
        return self._metadata

    @property
    def mht(self) -> MultilayerHashTable:
        """The in-memory Multilayer Hash Table."""
        self._require_initialized()
        assert self._mht is not None
        return self._mht

    # -- term-index lookup (superpost fetch + intersection) -------------------------

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Term-index lookup only: the final postings list for one keyword.

        This is the operation benchmarked against SQLite's B-tree in the
        paper's Figure 14 — everything up to (but excluding) document
        retrieval.
        """
        self._require_initialized()
        latency = LatencyBreakdown()
        candidates = self._lookup_terms([word], latency)
        return candidates.sorted_postings(), latency

    def _lookup_terms(self, words: list[str], latency: LatencyBreakdown) -> Superpost:
        """Fetch and intersect superposts for all ``words`` in one batch."""
        per_word = self._lookup_per_word(words, latency, fail_fast=True)
        return Superpost.intersect_all(per_word[word] for word in words)

    def _lookup_per_word(
        self, words: list[str], latency: LatencyBreakdown, fail_fast: bool = False
    ) -> dict[str, Superpost]:
        """Resolve each word's final postings list with one parallel fetch wave.

        All words' superpost range reads — across every layer of every word —
        go out as a *single* :class:`ParallelFetcher` batch, so a Boolean query
        over N terms costs the same number of round-trip waves as a one-word
        query.  Per-word intersection semantics are preserved: each word's
        layers are intersected with each other only.

        With ``fail_fast`` (the AND path), a word that hits an empty bin dooms
        the whole conjunction, so nothing is fetched and no latency is charged
        — matching a real engine that short-circuits on a missing term.
        Without it (the general Boolean path), doomed words simply resolve to
        empty postings lists while the remaining words are still fetched.
        """
        assert self._mht is not None and self._string_table is not None
        results, pending = self._cache_partition(words)
        if not pending:
            return results

        # Collect pointers per pending word, remembering which requests belong
        # to whom.  A word that hits an empty bin (or empty common-word list)
        # has an empty intersection; none of its layers need fetching.
        requests: list[RangeRead] = []
        word_layers: dict[str, list[int]] = {}
        doomed: list[str] = []
        for word in pending:
            pointers = self._mht.pointers_for(word)
            if any(pointer.is_empty for pointer in pointers):
                doomed.append(word)
                continue
            indexes: list[int] = []
            for pointer in pointers:
                indexes.append(len(requests))
                requests.append(pointer.to_range_read())
            word_layers[word] = indexes

        if fail_fast and doomed:
            for word in pending:
                results[word] = Superpost()
            return results
        for word in doomed:
            results[word] = Superpost()

        fetch_words = [word for word in pending if word in word_layers]
        if not requests:
            for word in fetch_words:
                results[word] = Superpost()
            return results

        single_word_hedging = (
            self._hedging.enabled
            and len(fetch_words) == 1
            and not self._mht.is_common(fetch_words[0])
        )
        with span(
            "search.lookup",
            words=list(fetch_words),
            requests=len(requests),
            hedged=single_word_hedging,
        ):
            if single_word_hedging:
                # Hedging needs per-request latencies, so it bypasses the pipeline.
                required = self._hedging.required_of(len(requests))
                fetch = self._fetcher.fetch_hedged(requests, required=required)
            else:
                fetch = self._pipeline.fetch(requests)
        if fetch.batch.requests:
            latency.add_lookup(
                fetch.batch.total_ms,
                fetch.batch.wait_ms,
                fetch.batch.download_ms,
                fetch.batch.nbytes,
            )

        for word in fetch_words:
            superposts: list[Superpost] = []
            for request_index in word_layers[word]:
                payload = fetch.payloads[request_index]
                if payload is None:
                    # Hedged-away straggler: skip this layer (superset remains valid).
                    continue
                superposts.append(
                    decode_superpost(payload, self._string_table, self._format_version)
                )
            if not superposts:
                result = Superpost()
            else:
                result = Superpost.intersect_all(superposts)
            self._remember_lookup(word, result)
            results[word] = result
        return results

    def _cache_partition(self, words: list[str]) -> tuple[dict[str, Superpost], list[str]]:
        """Split ``words`` into memoized results and words still to fetch.

        Cache-hit words resolve with no storage traffic and no added latency;
        a query whose words all hit counts as one cache hit, anything else as
        one miss (matching the pre-existing accounting).
        """
        results: dict[str, Superpost] = {}
        pending: list[str] = []
        with self._cache_lock:
            for word in dict.fromkeys(words):
                if self._query_cache_size > 0 and word in self._query_cache:
                    self._query_cache.move_to_end(word)
                    results[word] = Superpost(set(self._query_cache[word].postings))
                else:
                    pending.append(word)
            if self._query_cache_size > 0:
                if not pending:
                    self.cache_hits += 1
                else:
                    self.cache_misses += 1
        return results, pending

    def _remember_lookup(self, word: str, result: Superpost) -> None:
        """Memoize a word's final postings list (bounded LRU)."""
        if self._query_cache_size <= 0:
            return
        with self._cache_lock:
            self._query_cache[word] = Superpost(set(result.postings))
            self._query_cache.move_to_end(word)
            while len(self._query_cache) > self._query_cache_size:
                self._query_cache.popitem(last=False)

    # -- ranked retrieval (mode="topk_bm25") -----------------------------------------

    def ranking_stats(self) -> IndexStats:
        """The index's persisted ranking statistics (loaded once, cached).

        Like the header, the stats blob is a one-time download amortized over
        every later ranked query; its latency is recorded in
        ``stats_load_ms`` rather than charged to any single query.

        Raises :class:`~repro.index.stats.RankingUnsupportedError` when the
        index was built before ranked retrieval existed (no stats blob).
        """
        with self._stats_cache.lock:
            if self._stats_cache.stats is None:
                self._stats_cache.stats = self._load_stats()
            return self._stats_cache.stats

    def _load_stats(self) -> IndexStats:
        from repro.storage.base import BlobNotFoundError

        blob = stats_blob_name(self._index_name)
        with span("rank.stats_load", index=self._index_name):
            try:
                if isinstance(self._store, SimulatedCloudStore):
                    data, record = self._store.timed_get(blob)
                    self.stats_load_ms += record.total_ms
                else:
                    data = self._store.get(blob)
            except BlobNotFoundError:
                raise RankingUnsupportedError(
                    self._index_name, "no ranking statistics blob"
                ) from None
        return decode_stats(data, index_name=self._index_name)

    def ranked_candidates(
        self, words: list[str], latency: LatencyBreakdown
    ) -> Superpost:
        """Conjunctive candidate postings for a ranked query (member protocol)."""
        self._require_initialized()
        return self._lookup_terms(list(words), latency)

    def fetch_documents(
        self, postings: list[Posting], latency: LatencyBreakdown
    ) -> list[Document]:
        """Retrieve the named documents in one pipelined batch, unfiltered.

        Ranked queries call this only for the final top-k — the exact stats
        already filtered false positives, so no text check is needed.
        """
        if not postings:
            return []
        requests = [posting.to_range_read() for posting in postings]
        with span("search.fetch_documents", postings=len(postings)):
            fetch = self._pipeline.fetch(requests)
        if fetch.batch.requests:
            latency.add_retrieval(
                fetch.batch.total_ms,
                fetch.batch.wait_ms,
                fetch.batch.download_ms,
                fetch.batch.nbytes,
            )
        documents: list[Document] = []
        for posting, payload in zip(postings, fetch.payloads):
            if payload is None:
                continue
            documents.append(
                Document(ref=posting, text=payload.decode("utf-8", errors="replace"))
            )
        return documents

    def search_topk(
        self,
        query: str,
        k: int,
        weights: dict[str, float] | None = None,
        params: BM25Params | None = None,
    ) -> SearchResult:
        """BM25 top-k ranked retrieval: the best ``k`` documents matching all
        query terms, scored into [0, 1] and ordered best-first."""
        self._require_initialized()
        words = list(dict.fromkeys(self._tokenizer.tokenize(query)))
        return execute_topk([self], words, query, k, params=params, weights=weights)

    # -- full searches ---------------------------------------------------------------

    def query_word(
        self,
        word: str,
        top_k: int | None = None,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        """Search for documents containing a single keyword."""
        return self._execute([word], Term(word), word, top_k, exclude=exclude)

    def search(
        self,
        query: str,
        top_k: int | None = None,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        """Search for documents containing *all* keywords of ``query``.

        ``exclude`` names condemned postings (tombstoned documents) whose
        bytes must not be fetched: they are dropped between candidate
        computation and the document-fetch wave, exactly like the ranked
        path's pre-retrieval filtering.
        """
        words = list(dict.fromkeys(self._tokenizer.tokenize(query)))
        if not words:
            return SearchResult(query=query)
        if len(words) == 1:
            return self.query_word(words[0], top_k=top_k, exclude=exclude)
        predicate = parse_boolean_query(" AND ".join(words))
        return self._execute(words, predicate, query, top_k, exclude=exclude)

    def search_boolean(
        self,
        query: BooleanQuery | str,
        top_k: int | None = None,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        """Execute a Boolean query (AND/OR tree) over the index."""
        tree = parse_boolean_query(query) if isinstance(query, str) else query
        words = sorted(tree.terms())
        label = query if isinstance(query, str) else " ".join(words)
        return self._execute_boolean(words, tree, label, top_k, exclude=exclude)

    # -- execution helpers -------------------------------------------------------------

    def _execute(
        self,
        words: list[str],
        predicate: BooleanQuery,
        label: str,
        top_k: int | None,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        self._require_initialized()
        latency = LatencyBreakdown()
        candidates = self._lookup_terms(words, latency)
        return self._retrieve_and_filter(
            candidates, predicate, label, top_k, latency, exclude=exclude
        )

    def _execute_boolean(
        self,
        words: list[str],
        tree: BooleanQuery,
        label: str,
        top_k: int | None,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        self._require_initialized()
        latency = LatencyBreakdown()
        # Fetch every referenced term's superposts in one batch, then let the
        # query tree combine the per-term candidate sets.
        per_word = self._lookup_per_word(words, latency)
        candidates = tree.candidates(lambda word: per_word[word])
        return self._retrieve_and_filter(
            candidates, tree, label, top_k, latency, exclude=exclude
        )

    def _retrieve_and_filter(
        self,
        candidates: Superpost,
        predicate: BooleanQuery,
        label: str,
        top_k: int | None,
        latency: LatencyBreakdown,
        exclude: AbstractSet[Posting] | None = None,
    ) -> SearchResult:
        candidate_postings = candidates.sorted_postings()
        excluded_count = 0
        refunded_bytes = 0
        if exclude:
            # Pre-retrieval tombstone filtering: condemned candidates never
            # reach the fetch wave, so their bytes are refunded outright
            # (the ranked path has always worked this way).
            kept = [p for p in candidate_postings if p not in exclude]
            excluded_count = len(candidate_postings) - len(kept)
            if excluded_count:
                refunded_bytes = sum(
                    p.length for p in candidate_postings if p in exclude
                )
                candidate_postings = kept
        with span("search.retrieve", candidates=len(candidate_postings)) as retrieve_span:
            if excluded_count:
                retrieve_span.set(
                    excluded=excluded_count, refunded_bytes=refunded_bytes
                )
            if not candidate_postings:
                return SearchResult(query=label, candidate_postings=[], latency=latency)

            expected_fp = (
                self._metadata.expected_false_positives
                if self._metadata is not None
                else 0.0
            )
            to_fetch = candidate_postings
            if top_k is not None and top_k > 0:
                sample_size = top_k_sample_size(
                    top_k, len(candidate_postings), expected_fp, self._top_k_delta
                )
                to_fetch = candidate_postings[:sample_size]

            matched, fetched_count = self._fetch_and_filter(to_fetch, predicate, latency)
            if (
                top_k is not None
                and len(matched) < top_k
                and len(to_fetch) < len(candidate_postings)
            ):
                # The probabilistic sample came up short (probability <= delta);
                # fall back to fetching the remaining candidates.
                remainder = candidate_postings[len(to_fetch) :]
                more, more_count = self._fetch_and_filter(remainder, predicate, latency)
                matched.extend(more)
                fetched_count += more_count
            if top_k is not None:
                matched = matched[:top_k]
            retrieve_span.set(
                fetched=fetched_count,
                matched=len(matched),
                false_positives=fetched_count - len(matched),
            )

        return SearchResult(
            query=label,
            documents=matched,
            candidate_postings=candidate_postings,
            false_positive_count=fetched_count - len(matched),
            latency=latency,
        )

    def _fetch_and_filter(
        self,
        postings: list[Posting],
        predicate: BooleanQuery,
        latency: LatencyBreakdown,
    ) -> tuple[list[Document], int]:
        """Fetch documents for ``postings`` and keep only true matches."""
        if not postings:
            return [], 0
        requests = [posting.to_range_read() for posting in postings]
        fetch = self._pipeline.fetch(requests)
        if fetch.batch.requests:
            latency.add_retrieval(
                fetch.batch.total_ms,
                fetch.batch.wait_ms,
                fetch.batch.download_ms,
                fetch.batch.nbytes,
            )
        matched: list[Document] = []
        for posting, payload in zip(postings, fetch.payloads):
            if payload is None:
                continue
            text = payload.decode("utf-8", errors="replace")
            document = Document(ref=posting, text=text)
            if predicate.matches(self._tokenizer.distinct_terms(text)):
                matched.append(document)
        return matched, len(postings)

    def _require_initialized(self) -> None:
        if self._mht is None:
            raise RuntimeError(
                "Searcher is not initialized; call initialize() or AirphantSearcher.open()"
            )
