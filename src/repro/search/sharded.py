"""Searching a sharded index with one coalesced read batch per query.

A sharded index (built with ``AirphantBuilder(num_shards=N)``) partitions
the corpus into N disjoint sub-indexes tied together by a
:class:`~repro.index.metadata.ShardManifest`.  :class:`ShardedSearcher`
answers queries over all shards at once while preserving Airphant's core
property — a constant number of round-trip waves per query:

* a word's superpost reads are collected across *every* shard and issued as
  a **single** :class:`~repro.storage.pipeline.ReadPipeline` batch (which
  deduplicates and coalesces them before the store sees anything);
* per shard, the word's layer superposts are intersected as usual; the
  per-shard answers are then **unioned** (partitions are disjoint, so the
  union is exact: nothing is lost and nothing double-counted);
* candidate documents are fetched in a second single pipeline batch, and
  false positives are filtered the ordinary way.

Opening is lazy: construction touches nothing; the manifest and the shard
headers are downloaded on :meth:`initialize` (or the first query via
``open``).  An index with no shard manifest degrades to the plain
single-shard behaviour of :class:`~repro.search.searcher.AirphantSearcher`,
so callers can always use this class regardless of how the index was built.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable

from repro.core.mht import MultilayerHashTable
from repro.core.superpost import Superpost
from repro.index.compaction import HEADER_BLOB_SUFFIX, decode_header
from repro.index.metadata import IndexMetadata, ShardManifest, merge_shard_metadata
from repro.index.serialization import StringTable, decode_superpost
from repro.index.stats import (
    IndexStats,
    RankingUnsupportedError,
    decode_stats,
    merge_stats,
    stats_blob_name,
)
from repro.observability.tracing import span
from repro.search.results import LatencyBreakdown
from repro.search.searcher import AirphantSearcher
from repro.storage.base import BlobNotFoundError, RangeRead
from repro.storage.simulated import SimulatedCloudStore


@dataclass
class ShardState:
    """In-memory header state of one opened shard.

    ``format_version`` is per-shard: shards written by builders of different
    vintages may mix codecs, and each decodes with its own header's version.
    """

    name: str
    mht: MultilayerHashTable
    string_table: StringTable
    metadata: IndexMetadata | None
    format_version: int = 1


#: Ceiling on how far a sharded searcher widens its fetcher on its own.  A
#: query's lookup wave carries every shard's layer reads at once, so the
#: fan-out budget scales with the shard count — but a real store's thread
#: pool should not grow unboundedly with pathological shard counts.
MAX_SHARDED_CONCURRENCY = 128


class ShardedSearcher(AirphantSearcher):
    """Answers queries over every shard of a sharded index in one batch.

    Accepts the same configuration as :class:`AirphantSearcher`; hedging is
    honoured only on the single-shard fallback path (with shards, a query
    already fans out wide and dropping stragglers would have to reason about
    coalesced requests).
    """

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._shard_manifest: ShardManifest | None = None
        self._shards: list[ShardState] | None = None
        self._base_concurrency = self._fetcher.max_concurrency

    # -- initialization ----------------------------------------------------------

    def initialize(self) -> float:
        """Load the shard manifest and every shard's header.

        The manifest read is dependent (it names the shards); the header
        reads are independent and go out as one parallel fetcher batch —
        on real stores they download concurrently, and the simulated init
        latency is ``manifest + one header batch``.  Without a manifest this
        falls back to the plain single-shard initialization.
        """
        manifest_blob = ShardManifest.blob_name(self._index_name)
        manifest_ms = 0.0
        try:
            # One GET, not exists()+get(): plain indexes (the common case,
            # e.g. every delta member) pay a single missed probe.
            if isinstance(self._store, SimulatedCloudStore):
                data, record = self._store.timed_get(manifest_blob)
                manifest_ms = record.total_ms
            else:
                data = self._store.get(manifest_blob)
        except BlobNotFoundError:
            return super().initialize()
        manifest = ShardManifest.from_json(data)
        if manifest.num_shards == 0:
            return super().initialize()

        # Keep the *per-shard* concurrency budget constant as shards are
        # added: a lookup wave carries num_shards × layers reads, and with
        # the single-shard ceiling it would spill into extra concurrency
        # waves, stacking each shard's first-byte wait instead of
        # amortizing it (the measured 16-shard regression).
        self._fetcher.scale_concurrency(
            min(self._base_concurrency * manifest.num_shards, MAX_SHARDED_CONCURRENCY)
        )

        header_requests = [
            RangeRead(blob=f"{entry.name}/{HEADER_BLOB_SUFFIX}")
            for entry in manifest.shards
        ]
        fetch = self._fetcher.fetch(header_requests)
        shards = [
            ShardState(
                name=entry.name,
                mht=compacted.mht,
                string_table=compacted.string_table,
                metadata=compacted.metadata,
                format_version=compacted.format_version,
            )
            for entry, compacted in zip(
                manifest.shards, (decode_header(payload) for payload in fetch.payloads)
            )
        ]

        self._shard_manifest = manifest
        self._shards = shards
        # Base-class state: _mht doubles as the "initialized" flag (and keeps
        # common helpers working); the merged metadata describes the whole
        # corpus rather than any single shard.
        self._mht = shards[0].mht
        self._string_table = shards[0].string_table
        self._format_version = shards[0].format_version
        self._metadata = self._merge_metadata(shards)
        self.init_latency_ms = manifest_ms + fetch.batch.total_ms
        return self.init_latency_ms

    @property
    def shard_manifest(self) -> ShardManifest | None:
        """The manifest of the opened index (``None`` if single-shard)."""
        return self._shard_manifest

    @property
    def num_shards(self) -> int:
        """Opened shard count (1 for single-shard indexes)."""
        return len(self._shards) if self._shards is not None else 1

    @property
    def shards(self) -> list[ShardState]:
        """Per-shard header state (empty before initialization)."""
        return list(self._shards) if self._shards is not None else []

    def restrict(self, shard_ordinals: Iterable[int]) -> "ShardedSearcher":
        """A view of this searcher answering only the given shard ordinals.

        The scatter half of the cluster tier's scatter-gather: a router
        assigns each node a subset of ordinals, and the node answers its
        subset through this view while the router unions the partial
        answers (partitions are disjoint, so the union is exact).

        The view shares the parent's pipeline, fetcher, and block cache —
        only the shard list (and the metadata merged over it) differs.  The
        per-word query cache is disabled on the view: its entries would
        describe just the subset while being keyed like whole-index
        answers, poisoning the shared searcher.

        Requires an initialized searcher.  On a single-shard index the only
        valid subset is ``{0}`` (which returns ``self``); out-of-range or
        empty ordinal sets raise ``ValueError``.
        """
        self._require_initialized()
        ordinals = sorted(set(shard_ordinals))
        if not ordinals:
            raise ValueError("restrict needs at least one shard ordinal")
        if self._shards is None:
            if ordinals != [0]:
                raise ValueError(
                    f"single-shard index only has ordinal 0, requested {ordinals}"
                )
            return self
        out_of_range = [o for o in ordinals if not 0 <= o < len(self._shards)]
        if out_of_range:
            raise ValueError(
                f"shard ordinal(s) {out_of_range} out of range for "
                f"{len(self._shards)} shards"
            )
        if len(ordinals) == len(self._shards):
            return self
        view = copy.copy(self)
        view._shards = [self._shards[ordinal] for ordinal in ordinals]
        view._metadata = view._merge_metadata(view._shards)
        view._query_cache_size = 0
        view._query_cache = OrderedDict()
        view._cache_lock = threading.Lock()
        view.cache_hits = 0
        view.cache_misses = 0
        return view

    def _merge_metadata(self, shards: list[ShardState]) -> IndexMetadata | None:
        """Corpus-wide metadata aggregated over the opened shards."""
        return merge_shard_metadata(
            [shard.metadata for shard in shards if shard.metadata is not None],
            partitioner=(
                self._shard_manifest.partitioner if self._shard_manifest else "hash"
            ),
        )

    # -- ranked retrieval ----------------------------------------------------------

    def _load_stats(self) -> IndexStats:
        """Merge every shard's stats blob into full-corpus statistics.

        Always loads over the **manifest's** complete shard list — never the
        restricted subset — so a shard-restricted view scores with exactly
        the same corpus-wide IDF and average length as the full searcher (and
        as every other node of a routed cluster).  The shared ``_StatsCache``
        means whichever view triggers the load, all views reuse it.
        """
        if self._shard_manifest is None:
            return super()._load_stats()
        requests = [
            RangeRead(blob=stats_blob_name(entry.name))
            for entry in self._shard_manifest.shards
        ]
        try:
            with span(
                "rank.stats_load", index=self._index_name, shards=len(requests)
            ):
                fetch = self._fetcher.fetch(requests)
        except BlobNotFoundError:
            raise RankingUnsupportedError(
                self._index_name, "one or more shards have no ranking statistics blob"
            ) from None
        if isinstance(self._store, SimulatedCloudStore):
            self.stats_load_ms += fetch.batch.total_ms
        return merge_stats(
            decode_stats(payload, index_name=entry.name)
            for entry, payload in zip(self._shard_manifest.shards, fetch.payloads)
        )

    # -- lookup ------------------------------------------------------------------

    def _lookup_per_word(
        self, words: list[str], latency: LatencyBreakdown, fail_fast: bool = False
    ) -> dict[str, Superpost]:
        """Resolve each word across all shards with one pipeline batch.

        Every (shard, word, layer) superpost read goes out in a single
        coalescing batch.  Per shard the layers intersect; across shards the
        per-shard answers union.  A word doomed in one shard (empty bin) is
        simply absent from that shard; only a word doomed in *every* shard is
        globally empty — with ``fail_fast``, such a word short-circuits the
        whole conjunction before anything is fetched.
        """
        if self._shards is None:
            return super()._lookup_per_word(words, latency, fail_fast=fail_fast)

        results, pending = self._cache_partition(words)
        if not pending:
            return results

        requests: list[RangeRead] = []
        shard_layers: dict[tuple[int, str], list[int]] = {}
        dead: list[str] = []
        for word in pending:
            alive = False
            for shard_index, shard in enumerate(self._shards):
                pointers = shard.mht.pointers_for(word)
                if any(pointer.is_empty for pointer in pointers):
                    continue  # the word has no postings in this shard
                indexes: list[int] = []
                for pointer in pointers:
                    indexes.append(len(requests))
                    requests.append(pointer.to_range_read())
                shard_layers[(shard_index, word)] = indexes
                alive = True
            if not alive:
                dead.append(word)

        if fail_fast and dead:
            for word in pending:
                results[word] = Superpost()
            return results
        for word in dead:
            results[word] = Superpost()

        fetch_words = [word for word in pending if word not in dead]
        if not requests:
            for word in fetch_words:
                results[word] = Superpost()
            return results

        with span(
            "search.lookup",
            words=list(fetch_words),
            requests=len(requests),
            shards=len(self._shards),
        ):
            fetch = self._pipeline.fetch(requests)
        if fetch.batch.requests:
            latency.add_lookup(
                fetch.batch.total_ms,
                fetch.batch.wait_ms,
                fetch.batch.download_ms,
                fetch.batch.nbytes,
            )

        for word in fetch_words:
            per_shard: list[Superpost] = []
            for shard_index, shard in enumerate(self._shards):
                indexes = shard_layers.get((shard_index, word))
                if not indexes:
                    continue
                superposts = [
                    decode_superpost(
                        fetch.payloads[request_index],
                        shard.string_table,
                        shard.format_version,
                    )
                    for request_index in indexes
                ]
                per_shard.append(Superpost.intersect_all(superposts))
            merged = Superpost.union_all(per_shard)
            self._remember_lookup(word, merged)
            results[word] = merged
        return results
