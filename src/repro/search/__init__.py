"""Airphant Searcher: query-time components.

The Searcher is the lightweight component that answers keyword queries from
a persisted IoU Sketch.  It downloads the header blob once at initialization
(hash seeds + bin pointers), then answers each query with one parallel batch
of superpost range reads followed by one parallel batch of document fetches,
filtering out false positives after the documents arrive.
"""

from repro.search.boolean import And, BooleanQuery, Or, Term, parse_boolean_query
from repro.search.multi import MultiIndexSearcher
from repro.search.regexsearch import RegexSearcher, extract_required_terms
from repro.search.replication import HedgingPolicy
from repro.search.results import LatencyBreakdown, SearchResult
from repro.search.searcher import AirphantSearcher
from repro.search.sharded import ShardedSearcher, ShardState
from repro.search.visibility import TombstoneView, apply_tombstones

__all__ = [
    "AirphantSearcher",
    "And",
    "BooleanQuery",
    "HedgingPolicy",
    "MultiIndexSearcher",
    "LatencyBreakdown",
    "Or",
    "RegexSearcher",
    "SearchResult",
    "ShardState",
    "ShardedSearcher",
    "Term",
    "TombstoneView",
    "apply_tombstones",
    "extract_required_terms",
    "parse_boolean_query",
]
