"""Wait-vs-download latency breakdown (Figures 8 and 11)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import EngineRun


@dataclass(frozen=True)
class BreakdownSummary:
    """Average network-communication breakdown of one engine's queries."""

    engine_name: str
    mean_wait_ms: float
    mean_download_ms: float

    @property
    def mean_total_ms(self) -> float:
        """Mean wait + download time per query."""
        return self.mean_wait_ms + self.mean_download_ms


def summarize_breakdown(run: EngineRun) -> BreakdownSummary:
    """Average the wait and download times of all queries in ``run``."""
    if not run.results:
        return BreakdownSummary(engine_name=run.engine_name, mean_wait_ms=0.0, mean_download_ms=0.0)
    wait = sum(result.latency.wait_ms for result in run.results) / len(run.results)
    download = sum(result.latency.download_ms for result in run.results) / len(run.results)
    return BreakdownSummary(
        engine_name=run.engine_name, mean_wait_ms=wait, mean_download_ms=download
    )


def per_query_breakdown(run: EngineRun) -> list[tuple[float, float]]:
    """Per-query (wait, download) pairs, the scatter points of Figure 11."""
    return [(result.latency.wait_ms, result.latency.download_ms) for result in run.results]
