"""Benchmark harness: builds engines, replays query workloads, reports stats.

Everything under ``benchmarks/`` uses this package to regenerate the paper's
tables and figures; it is also part of the public API so downstream users can
benchmark their own corpora and configurations.
"""

from repro.bench.breakdown import BreakdownSummary, per_query_breakdown, summarize_breakdown
from repro.bench.harness import (
    EngineRun,
    LatencyStats,
    build_standard_engines,
    run_comparison,
    run_workload,
)
from repro.bench.tables import format_series, format_table

__all__ = [
    "BreakdownSummary",
    "EngineRun",
    "LatencyStats",
    "build_standard_engines",
    "format_series",
    "format_table",
    "per_query_breakdown",
    "run_comparison",
    "run_workload",
    "summarize_breakdown",
]
