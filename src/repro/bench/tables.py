"""Plain-text rendering of benchmark tables and series.

The benchmark scripts print the same rows and series the paper's tables and
figures report; these helpers keep that output readable and consistent.
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [str(header) for header in headers]
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in string_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in string_rows:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render one figure series as ``name: (x, y) (x, y) ...``."""
    points = " ".join(f"({_cell(x)}, {_cell(y)})" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
