"""Engine-comparison harness.

Builds the paper's five engines over a corpus, replays an identical query
workload against each, and reports the mean and 99th-percentile simulated
latencies — the quantities plotted in Figures 6, 7, 12 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.airphant import AirphantEngine
from repro.baselines.base import SearchEngine
from repro.baselines.elastic_like import ElasticLikeEngine
from repro.baselines.hashtable import HashTableEngine
from repro.baselines.lucene_like import LuceneLikeEngine
from repro.baselines.sqlite_like import SQLiteLikeEngine
from repro.core.config import SketchConfig
from repro.parsing.documents import Document
from repro.search.results import SearchResult
from repro.storage.base import ObjectStore
from repro.workloads.queries import QueryWorkload


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a list of per-query latencies (milliseconds)."""

    mean_ms: float
    p50_ms: float
    p99_ms: float
    max_ms: float
    count: int

    @classmethod
    def from_latencies(cls, latencies: Sequence[float]) -> "LatencyStats":
        """Compute stats; an empty input produces all-zero stats."""
        if not latencies:
            return cls(mean_ms=0.0, p50_ms=0.0, p99_ms=0.0, max_ms=0.0, count=0)
        values = np.asarray(latencies, dtype=float)
        return cls(
            mean_ms=float(values.mean()),
            p50_ms=float(np.percentile(values, 50)),
            p99_ms=float(np.percentile(values, 99)),
            max_ms=float(values.max()),
            count=len(latencies),
        )


@dataclass
class EngineRun:
    """All per-query results of one engine over one workload."""

    engine_name: str
    init_latency_ms: float
    results: list[SearchResult] = field(default_factory=list)

    @property
    def latencies_ms(self) -> list[float]:
        """Per-query end-to-end latencies."""
        return [result.latency_ms for result in self.results]

    @property
    def lookup_latencies_ms(self) -> list[float]:
        """Per-query term-index lookup latencies."""
        return [result.latency.lookup_ms for result in self.results]

    @property
    def stats(self) -> LatencyStats:
        """Mean / p99 of end-to-end latency."""
        return LatencyStats.from_latencies(self.latencies_ms)

    @property
    def lookup_stats(self) -> LatencyStats:
        """Mean / p99 of term-index lookup latency."""
        return LatencyStats.from_latencies(self.lookup_latencies_ms)

    @property
    def mean_false_positives(self) -> float:
        """Average number of false-positive documents fetched per query."""
        if not self.results:
            return 0.0
        return sum(result.false_positive_count for result in self.results) / len(self.results)


def _default_cache_budgets(documents: Sequence[Document]) -> dict[str, dict[str, int]]:
    """Scale the baselines' cache budgets to the (scaled-down) corpus size.

    The paper's corpora are orders of magnitude larger than the engines'
    caches, so term-index traversals mostly hit the network.  The corpora
    generated for this reproduction are scaled down; keeping real-world cache
    sizes would let every baseline cache its whole term index and hide the
    round-trip behaviour the experiments are about.  We therefore keep the
    *cache-to-corpus ratio* roughly what it is in the paper: about 1 % of the
    corpus bytes for the skip list / B-tree caches, and snapshot hydration
    chunks of about a quarter of the segment data.
    """
    corpus_bytes = sum(document.length for document in documents)
    return {
        "Lucene": {"cache_bytes": max(4 * 1024, corpus_bytes // 100)},
        "SQLite": {"cache_bytes": max(2 * 1024, corpus_bytes // 200)},
        "Elasticsearch": {
            "cache_bytes": max(4 * 1024, corpus_bytes // 100),
            "hydration_chunk_bytes": max(64 * 1024, corpus_bytes // 4),
            "hydration_cache_chunks": 2,
        },
    }


def build_standard_engines(
    store: ObjectStore,
    documents: Sequence[Document],
    config: SketchConfig | None = None,
    engine_names: Sequence[str] | None = None,
    corpus_name: str = "corpus",
    engine_overrides: dict[str, dict[str, object]] | None = None,
    skip_build: bool = False,
) -> dict[str, SearchEngine]:
    """Build the paper's engine suite over ``documents``.

    ``engine_names`` restricts the suite (useful for focused experiments);
    the default builds all five: Lucene, Elasticsearch, SQLite, HashTable,
    and Airphant.  ``engine_overrides`` passes extra keyword arguments to
    individual engine constructors (e.g., cache sizes); anything not
    overridden uses cache budgets scaled to the corpus size (see
    :func:`_default_cache_budgets`).

    ``skip_build`` returns engine objects without indexing: use it to open a
    previously-built suite through a different store view (e.g., a higher-RTT
    region over the same backend in the cross-region experiments).
    """
    config = config if config is not None else SketchConfig()
    budgets = _default_cache_budgets(documents)
    overrides = engine_overrides if engine_overrides is not None else {}

    def kwargs_for(name: str) -> dict[str, object]:
        merged: dict[str, object] = dict(budgets.get(name, {}))
        merged.update(overrides.get(name, {}))
        return merged

    factories = {
        "Lucene": lambda: LuceneLikeEngine(
            store, index_name=f"{corpus_name}/lucene", **kwargs_for("Lucene")
        ),
        "Elasticsearch": lambda: ElasticLikeEngine(
            store, index_name=f"{corpus_name}/elastic", **kwargs_for("Elasticsearch")
        ),
        "SQLite": lambda: SQLiteLikeEngine(
            store, index_name=f"{corpus_name}/sqlite", **kwargs_for("SQLite")
        ),
        "HashTable": lambda: HashTableEngine(
            store, index_name=f"{corpus_name}/hashtable", config=config, **kwargs_for("HashTable")
        ),
        "Airphant": lambda: AirphantEngine(
            store, index_name=f"{corpus_name}/airphant", config=config, **kwargs_for("Airphant")
        ),
    }
    selected = list(engine_names) if engine_names is not None else list(factories)
    engines: dict[str, SearchEngine] = {}
    for name in selected:
        if name not in factories:
            raise ValueError(f"unknown engine {name!r}; expected one of {sorted(factories)}")
        engine = factories[name]()
        if not skip_build:
            engine.build(documents)
        engines[name] = engine
    return engines


def run_workload(engine: SearchEngine, workload: QueryWorkload) -> EngineRun:
    """Initialize ``engine`` and replay every query of ``workload``."""
    init_ms = engine.initialize()
    run = EngineRun(engine_name=engine.name, init_latency_ms=init_ms)
    for query in workload.queries:
        run.results.append(engine.search(query, top_k=workload.top_k))
    return run


def run_comparison(
    engines: dict[str, SearchEngine], workload: QueryWorkload
) -> dict[str, EngineRun]:
    """Run the same workload against every engine."""
    return {name: run_workload(engine, workload) for name, engine in engines.items()}
