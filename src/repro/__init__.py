"""Airphant: cloud-oriented document indexing (ICDE 2022) — Python reproduction.

Airphant is a search engine built for the *separation of compute and
storage*: documents and their inverted index live entirely on cloud object
storage, and a small compute node answers keyword queries with a single
batch of parallel range reads thanks to the **IoU Sketch**, a statistical
inverted index that trades a few (later filtered) false positives for the
elimination of all dependent sequential round-trips.

Quickstart::

    from repro import (
        AirphantService, SearchRequest, SimulatedCloudStore, SketchConfig,
    )

    store = SimulatedCloudStore()
    store.put("corpus/logs.txt", b"error disk full\\ninfo started\\nerror timeout")

    service = AirphantService(store)
    service.build_index("logs-index", ["corpus/logs.txt"],
                        sketch_config=SketchConfig(num_bins=1024))

    response = service.search(SearchRequest(query="error", index="logs-index", top_k=10))
    print([hit.text for hit in response.documents])

Sub-packages
------------
* :mod:`repro.core` — IoU Sketch, its optimizer and accuracy analysis.
* :mod:`repro.index` — Builder, superpost compaction, serialization.
* :mod:`repro.search` — Searcher, Boolean/regex queries, hedged requests.
* :mod:`repro.ingest` — live write path: WAL-backed memtables, delta
  flushes, background compaction (the paper's "frequent updates" extension).
* :mod:`repro.service` — service facade, typed request/response API, HTTP server.
* :mod:`repro.storage` — object-store abstraction, URI backend registry
  (``mem://``/``file://``/``sim://``/``http(s)://``/``s3://``), resilience
  wrapper (retries/timeouts/hedged reads), simulated cloud storage.
* :mod:`repro.parsing` / :mod:`repro.profiling` — corpus parsing & profiling.
* :mod:`repro.baselines` — Lucene-, Elasticsearch-, SQLite-like and hash-table
  baselines used in the paper's evaluation.
* :mod:`repro.workloads` — synthetic / Cranfield-like / log-corpus generators.
* :mod:`repro.cost` — coupled-vs-decoupled deployment cost model.
* :mod:`repro.bench` — benchmark harness regenerating the paper's figures.
"""

from repro.baselines import (
    AirphantEngine,
    ElasticLikeEngine,
    HashTableEngine,
    LuceneLikeEngine,
    SearchEngine,
    SQLiteLikeEngine,
)
from repro.core import (
    IoUSketch,
    MultilayerHashTable,
    SketchConfig,
    Superpost,
    expected_false_positives,
    minimize_layers,
)
from repro.cost import CostModel, PeakTroughWorkload
from repro.observability import MetricsRegistry, get_registry
from repro.index import (
    AirphantBuilder,
    AppendOnlyIndexManager,
    BuiltIndex,
    BuiltShardedIndex,
    IndexMetadata,
    ShardManifest,
)
from repro.ingest import (
    IngestCoordinator,
    LiveIndex,
    LiveSearcher,
    Memtable,
    MemtableSearcher,
    WriteAheadLog,
)
from repro.parsing import (
    Document,
    DocumentRef,
    LineDelimitedCorpusParser,
    Posting,
    SimpleAnalyzer,
    WhitespaceAnalyzer,
    WholeBlobCorpusParser,
)
from repro.profiling import CorpusProfile, profile_documents
from repro.search import (
    AirphantSearcher,
    And,
    HedgingPolicy,
    MultiIndexSearcher,
    Or,
    RegexSearcher,
    SearchResult,
    ShardedSearcher,
    Term,
)
from repro.service import (
    AirphantService,
    IndexCatalog,
    IndexInfo,
    SearchRequest,
    SearchResponse,
    ServiceConfig,
    ServiceError,
)
from repro.storage import (
    AffineLatencyModel,
    FlakyStore,
    HTTPRangeStore,
    InMemoryObjectStore,
    LocalObjectStore,
    ObjectStore,
    RangeRead,
    ReadOnlyStoreError,
    ReadPipeline,
    ResilientStore,
    RetriesExhaustedError,
    S3ObjectStore,
    SimulatedCloudStore,
    StoreAccessError,
    StoreURIError,
    TransientStoreError,
    open_store,
    register_scheme,
)
from repro.workloads import QueryWorkload, sample_query_words

__version__ = "1.0.0"

__all__ = [
    "AffineLatencyModel",
    "AirphantBuilder",
    "AirphantEngine",
    "AirphantSearcher",
    "AirphantService",
    "AppendOnlyIndexManager",
    "And",
    "BuiltIndex",
    "BuiltShardedIndex",
    "CorpusProfile",
    "CostModel",
    "Document",
    "DocumentRef",
    "ElasticLikeEngine",
    "FlakyStore",
    "HTTPRangeStore",
    "HashTableEngine",
    "HedgingPolicy",
    "IndexCatalog",
    "IndexInfo",
    "IndexMetadata",
    "IngestCoordinator",
    "InMemoryObjectStore",
    "IoUSketch",
    "LineDelimitedCorpusParser",
    "LiveIndex",
    "LiveSearcher",
    "LocalObjectStore",
    "LuceneLikeEngine",
    "Memtable",
    "MemtableSearcher",
    "MetricsRegistry",
    "MultiIndexSearcher",
    "MultilayerHashTable",
    "ObjectStore",
    "Or",
    "PeakTroughWorkload",
    "Posting",
    "QueryWorkload",
    "RangeRead",
    "ReadOnlyStoreError",
    "ReadPipeline",
    "RegexSearcher",
    "ResilientStore",
    "RetriesExhaustedError",
    "S3ObjectStore",
    "SQLiteLikeEngine",
    "SearchEngine",
    "SearchRequest",
    "SearchResponse",
    "SearchResult",
    "ServiceConfig",
    "ServiceError",
    "ShardManifest",
    "ShardedSearcher",
    "SimpleAnalyzer",
    "SimulatedCloudStore",
    "SketchConfig",
    "StoreAccessError",
    "StoreURIError",
    "Superpost",
    "Term",
    "TransientStoreError",
    "WhitespaceAnalyzer",
    "WholeBlobCorpusParser",
    "WriteAheadLog",
    "expected_false_positives",
    "get_registry",
    "minimize_layers",
    "open_store",
    "profile_documents",
    "register_scheme",
    "sample_query_words",
    "__version__",
]
