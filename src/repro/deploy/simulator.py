"""Coupled vs. decoupled deployment simulation.

Two provisioning policies are simulated against a demand trace:

* :class:`FixedFleetPolicy` — the coupled paradigm: the node count is fixed
  up front (normally sized for the peak) because scaling an Elasticsearch
  cluster down would require rebalancing its locally-stored shards.
* :class:`AutoscalingPolicy` — the decoupled paradigm: node count follows
  demand; new nodes only need to download the small index header
  (initialization latency), so scale-up is fast but not instant, which the
  simulator charges as queries served late during cold starts.

The simulator reports node-hours, monthly compute cost, and the fraction of
queries that could not be served at their arrival interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.deploy.workload import WorkloadTrace

#: Hours in the billing month used to convert node-hours to monthly cost.
_HOURS_PER_MONTH = 730.0


@dataclass(frozen=True)
class FixedFleetPolicy:
    """Always run ``num_nodes`` nodes (coupled deployment)."""

    num_nodes: int

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")

    @classmethod
    def for_peak(cls, trace: WorkloadTrace, node_throughput_ops: float) -> "FixedFleetPolicy":
        """Provision for the trace's peak, as a coupled cluster must."""
        return cls(num_nodes=max(1, math.ceil(trace.peak_ops / node_throughput_ops)))

    def nodes_for(self, demand_ops: float, node_throughput_ops: float) -> int:
        return self.num_nodes


@dataclass(frozen=True)
class AutoscalingPolicy:
    """Scale the fleet to the current demand (decoupled deployment).

    ``min_nodes`` keeps a warm floor (0 allows scale-to-zero, FaaS style);
    ``headroom`` over-provisions by a fraction to absorb jitter.
    """

    min_nodes: int = 0
    max_nodes: int | None = None
    headroom: float = 0.0
    cold_start_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.min_nodes < 0:
            raise ValueError("min_nodes must be non-negative")
        if self.max_nodes is not None and self.max_nodes < max(self.min_nodes, 1):
            raise ValueError("max_nodes must be at least min_nodes (and one)")
        if self.headroom < 0:
            raise ValueError("headroom must be non-negative")
        if self.cold_start_seconds < 0:
            raise ValueError("cold_start_seconds must be non-negative")

    def nodes_for(self, demand_ops: float, node_throughput_ops: float) -> int:
        if demand_ops <= 0:
            return self.min_nodes
        wanted = math.ceil(demand_ops * (1.0 + self.headroom) / node_throughput_ops)
        wanted = max(wanted, self.min_nodes, 1)
        if self.max_nodes is not None:
            wanted = min(wanted, self.max_nodes)
        return wanted


@dataclass(frozen=True)
class DeploymentReport:
    """Outcome of simulating one policy over one trace."""

    policy_name: str
    node_hours: float
    monthly_compute_cost: float
    served_queries: float
    offered_queries: float
    late_queries: float
    peak_nodes: int

    @property
    def unserved_fraction(self) -> float:
        """Fraction of offered queries not served within their interval."""
        if self.offered_queries <= 0:
            return 0.0
        return max(0.0, 1.0 - self.served_queries / self.offered_queries)

    @property
    def late_fraction(self) -> float:
        """Fraction of offered queries delayed by cold starts."""
        if self.offered_queries <= 0:
            return 0.0
        return self.late_queries / self.offered_queries


class DeploymentSimulator:
    """Replays a demand trace against a provisioning policy."""

    def __init__(
        self,
        node_throughput_ops: float = 5.71,
        node_monthly_cost: float = 13.23,
    ) -> None:
        if node_throughput_ops <= 0:
            raise ValueError("node_throughput_ops must be positive")
        if node_monthly_cost < 0:
            raise ValueError("node_monthly_cost must be non-negative")
        self._throughput = node_throughput_ops
        self._monthly_cost = node_monthly_cost

    def simulate(
        self,
        trace: WorkloadTrace,
        policy: FixedFleetPolicy | AutoscalingPolicy,
        policy_name: str | None = None,
    ) -> DeploymentReport:
        """Run ``policy`` over ``trace`` and summarize capacity, cost, and lateness."""
        node_seconds = 0.0
        served = 0.0
        late = 0.0
        peak_nodes = 0
        previous_nodes = (
            policy.min_nodes if isinstance(policy, AutoscalingPolicy) else policy.num_nodes
        )
        cold_start = (
            policy.cold_start_seconds if isinstance(policy, AutoscalingPolicy) else 0.0
        )
        for demand in trace.demand_ops:
            nodes = policy.nodes_for(demand, self._throughput)
            peak_nodes = max(peak_nodes, nodes)
            node_seconds += nodes * trace.interval_seconds
            capacity = nodes * self._throughput * trace.interval_seconds
            offered = demand * trace.interval_seconds
            # Freshly started nodes spend their cold-start downloading the MHT
            # header; queries assigned to them in that window finish late.
            new_nodes = max(0, nodes - previous_nodes)
            late += min(offered, new_nodes * self._throughput * cold_start)
            served += min(offered, capacity)
            previous_nodes = nodes
        node_hours = node_seconds / 3600.0
        # Billing: the time-averaged fleet size, extrapolated to a month.
        average_nodes = node_seconds / trace.duration_seconds
        monthly_cost = average_nodes * self._monthly_cost
        return DeploymentReport(
            policy_name=policy_name or type(policy).__name__,
            node_hours=node_hours,
            monthly_compute_cost=monthly_cost,
            served_queries=served,
            offered_queries=trace.total_queries,
            late_queries=late,
            peak_nodes=peak_nodes,
        )

    def compare(
        self, trace: WorkloadTrace, autoscaling: AutoscalingPolicy | None = None
    ) -> dict[str, DeploymentReport]:
        """Simulate both paradigms: peak-provisioned fixed fleet vs autoscaling."""
        fixed = FixedFleetPolicy.for_peak(trace, self._throughput)
        elastic = autoscaling if autoscaling is not None else AutoscalingPolicy()
        return {
            "coupled (fixed fleet)": self.simulate(trace, fixed, "coupled (fixed fleet)"),
            "decoupled (autoscaling)": self.simulate(trace, elastic, "decoupled (autoscaling)"),
        }
