"""Demand traces for deployment simulation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cost.model import PeakTroughWorkload


@dataclass(frozen=True)
class WorkloadTrace:
    """Query demand over time.

    ``demand_ops`` holds the offered load (queries per second) for each
    interval of ``interval_seconds``.
    """

    interval_seconds: float
    demand_ops: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if not self.demand_ops:
            raise ValueError("a trace needs at least one interval")
        if any(demand < 0 for demand in self.demand_ops):
            raise ValueError("demand must be non-negative")

    def __len__(self) -> int:
        return len(self.demand_ops)

    @property
    def duration_seconds(self) -> float:
        """Total covered time."""
        return self.interval_seconds * len(self.demand_ops)

    @property
    def peak_ops(self) -> float:
        """Highest offered load in the trace."""
        return max(self.demand_ops)

    @property
    def average_ops(self) -> float:
        """Time-weighted average offered load."""
        return float(np.mean(self.demand_ops))

    @property
    def total_queries(self) -> float:
        """Total number of queries offered over the trace."""
        return float(sum(self.demand_ops) * self.interval_seconds)

    @classmethod
    def from_peak_trough(
        cls,
        workload: PeakTroughWorkload,
        num_intervals: int = 144,
        interval_seconds: float = 600.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> "WorkloadTrace":
        """Expand a peak-trough specification into a periodic daily trace.

        The first ``peak_fraction`` of each day runs at the peak rate, the
        rest at the trough rate; optional multiplicative jitter roughens the
        trace so autoscaling decisions are non-trivial.
        """
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        rng = np.random.default_rng(seed)
        peak_intervals = int(round(workload.peak_fraction * num_intervals))
        demand = np.concatenate(
            [
                np.full(peak_intervals, workload.peak_ops),
                np.full(num_intervals - peak_intervals, workload.trough_ops),
            ]
        )
        if jitter > 0:
            demand = demand * rng.lognormal(mean=0.0, sigma=jitter, size=num_intervals)
        return cls(interval_seconds=interval_seconds, demand_ops=tuple(float(x) for x in demand))
