"""Elastic deployment simulation.

The paper's motivation for the separation of compute and storage is
elasticity: query nodes can be added or removed as demand changes (even down
to per-request FaaS invocations) because all state lives in cloud storage,
whereas a coupled cluster must stay provisioned for its peak.  This package
simulates both policies against a demand trace so the compute-cost claims of
Section V-C can be examined over time rather than only in closed form.
"""

from repro.deploy.simulator import (
    AutoscalingPolicy,
    DeploymentReport,
    DeploymentSimulator,
    FixedFleetPolicy,
)
from repro.deploy.workload import WorkloadTrace

__all__ = [
    "AutoscalingPolicy",
    "DeploymentReport",
    "DeploymentSimulator",
    "FixedFleetPolicy",
    "WorkloadTrace",
]
