"""The in-memory IoU Sketch.

This is the logical data structure of Section IV-A: L layers of bins, each
bin holding a super postings list.  The Builder constructs one of these from
a corpus, then splits it into the cloud-persisted superposts and the
in-memory Multilayer Hash Table.  The in-memory form is also useful on its
own (the false-positive experiments of Figures 5 and 16 run directly against
it without any storage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.common_words import CommonWordTable
from repro.core.hashing import LayeredHasher
from repro.core.superpost import Superpost
from repro.parsing.documents import Posting


@dataclass
class IoUSketch:
    """An L-layer intersection-of-unions sketch over keywords.

    Supports the two operations of the paper:

    * :meth:`insert` — union a word's postings into its bin in every layer.
    * :meth:`query` — intersect the word's superposts across all layers.

    Words registered in the optional :class:`CommonWordTable` are answered
    exactly and never touch the hashed layers.
    """

    hasher: LayeredHasher
    layers: list[list[Superpost]]
    common_words: CommonWordTable

    @classmethod
    def build(
        cls,
        num_layers: int,
        total_bins: int,
        seed: int = 0,
        common_words: CommonWordTable | None = None,
    ) -> "IoUSketch":
        """Create an empty sketch with ``total_bins`` split across layers.

        ``total_bins`` is the paper's B; each layer receives ``B // L`` bins
        (at least one).
        """
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if total_bins < num_layers:
            raise ValueError("total_bins must be at least num_layers")
        bins_per_layer = max(1, total_bins // num_layers)
        hasher = LayeredHasher.build(num_layers, bins_per_layer, seed=seed)
        layers = [[Superpost() for _ in range(bins_per_layer)] for _ in range(num_layers)]
        return cls(
            hasher=hasher,
            layers=layers,
            common_words=common_words if common_words is not None else CommonWordTable(),
        )

    # -- structure ----------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of layers L."""
        return len(self.layers)

    @property
    def bins_per_layer(self) -> int:
        """Number of bins in each layer."""
        return len(self.layers[0]) if self.layers else 0

    @property
    def total_bins(self) -> int:
        """Total number of hashed bins across all layers."""
        return self.num_layers * self.bins_per_layer

    def bin_of(self, word: str) -> list[int]:
        """Bin index of ``word`` in each layer."""
        return self.hasher.bins_of(word)

    # -- operations -----------------------------------------------------------------

    def insert(self, word: str, postings: Iterable[Posting]) -> None:
        """Union ``postings`` into the word's bin in every layer.

        Common words go to their exact table instead of the hashed layers.
        """
        postings = list(postings)
        if word in self.common_words:
            self.common_words.add(word, postings)
            return
        for layer_index, bin_index in enumerate(self.hasher.bins_of(word)):
            self.layers[layer_index][bin_index].add_all(postings)

    def insert_postings_map(self, postings_by_word: Mapping[str, Iterable[Posting]]) -> None:
        """Insert an entire word → postings mapping (builder convenience)."""
        for word, postings in postings_by_word.items():
            self.insert(word, postings)

    def layer_superposts(self, word: str) -> list[Superpost]:
        """The L superposts a query for ``word`` would fetch."""
        return [
            self.layers[layer_index][bin_index]
            for layer_index, bin_index in enumerate(self.hasher.bins_of(word))
        ]

    def query(self, word: str) -> Superpost:
        """Final postings list for ``word``: intersection of its superposts.

        Never misses a relevant document; may contain false positives that a
        later document fetch filters out.
        """
        if word in self.common_words:
            return self.common_words.query(word)
        return Superpost.intersect_all(self.layer_superposts(word))

    # -- diagnostics -----------------------------------------------------------------

    def false_positives(self, word: str, true_postings: set[Posting]) -> int:
        """Number of irrelevant postings returned for ``word``.

        Used by the accuracy experiments to compare the observed count with
        the analytical expectation F(L).
        """
        returned = self.query(word).postings
        return len(returned - true_postings)

    def bin_sizes(self) -> list[list[int]]:
        """Superpost sizes per layer, for storage-usage analysis."""
        return [[len(superpost) for superpost in layer] for layer in self.layers]
