"""Algorithm 1: minimize the number of IoU Sketch layers.

Given a bin budget B and an accuracy target F₀ (expected false positives per
query), find the smallest integer number of layers L* with F(L*) ≤ F₀, or
report that the configuration is infeasible.

The search exploits the structure proved in the paper:

* Lemma 1 gives a cheap lower bound on F(L); if it already exceeds F₀ the
  configuration is rejected immediately.
* Lemma 2: for L < L_min = (B / max_i |W_i|)·ln 2, F̂(L) is strictly
  decreasing, so the smallest feasible L in [1, L_min] can be binary-searched.
* Lemma 3: for L > L_max = (B / min_i |W_i|)·ln 2, F̂(L) is strictly
  increasing, so the iterative search never needs to look past L_max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.core.analysis import (
    expected_false_positives,
    fast_region_limit,
    lemma1_lower_bound,
    slow_region_limit,
)
from repro.profiling.distributions import QueryWordDistribution
from repro.profiling.profiler import CorpusProfile


class InfeasibleConfigurationError(ValueError):
    """Raised when no number of layers can satisfy the accuracy target."""

    def __init__(self, num_bins: int, target: float, lower_bound: float):
        message = (
            f"no layer count satisfies F(L) <= {target} with B={num_bins} bins "
            f"(lower bound {lower_bound:.4g}); increase the bin budget or relax the target"
        )
        super().__init__(message)
        self.num_bins = num_bins
        self.target = target
        self.lower_bound = lower_bound


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of Algorithm 1."""

    num_layers: int
    expected_false_positives: float
    used_fast_region: bool
    lower_bound: float


def minimize_layers(
    num_bins: int,
    target_false_positives: float,
    profile: CorpusProfile | Sequence[int],
    distribution: QueryWordDistribution | None = None,
    max_layers: int | None = None,
    exact: bool = True,
) -> OptimizationResult:
    """Run Algorithm 1 and return the minimum feasible number of layers.

    Parameters
    ----------
    num_bins:
        Total bin budget B across all layers.
    target_false_positives:
        Accuracy target F₀ (expected irrelevant documents per query).
    profile:
        Corpus profile (or a raw list of per-document distinct word counts).
    distribution:
        Query word prior; defaults to the uniform prior implied by the profile.
    max_layers:
        Optional hard cap on L (useful to bound query fan-out); defaults to B.
    exact:
        Evaluate F with the exact q_i (True) or the approximation q̂_i (False).

    Raises
    ------
    InfeasibleConfigurationError
        If the Lemma 1 lower bound exceeds the target or no L ≤ L_max (and
        ≤ ``max_layers``) satisfies the constraint.
    """
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if target_false_positives < 0:
        raise ValueError("target_false_positives must be non-negative")
    layer_cap = num_bins if max_layers is None else min(max_layers, num_bins)
    if layer_cap < 1:
        raise ValueError("max_layers must allow at least one layer")

    def objective(num_layers: int) -> float:
        return expected_false_positives(
            num_layers, num_bins, profile, distribution, exact=exact
        )

    lower_bound = lemma1_lower_bound(num_bins, profile, distribution)
    if lower_bound > target_false_positives:
        raise InfeasibleConfigurationError(num_bins, target_false_positives, lower_bound)

    l_min = max(1, min(layer_cap, int(math.floor(fast_region_limit(num_bins, profile)))))
    l_max = max(l_min, min(layer_cap, int(math.ceil(slow_region_limit(num_bins, profile)))))

    if objective(l_min) <= target_false_positives:
        best = _binary_search_smallest(objective, 1, l_min, target_false_positives)
        return OptimizationResult(
            num_layers=best,
            expected_false_positives=objective(best),
            used_fast_region=True,
            lower_bound=lower_bound,
        )

    # Slow region: F is not guaranteed monotone, scan upward until feasible.
    for num_layers in range(l_min + 1, l_max + 1):
        value = objective(num_layers)
        if value <= target_false_positives:
            return OptimizationResult(
                num_layers=num_layers,
                expected_false_positives=value,
                used_fast_region=False,
                lower_bound=lower_bound,
            )
    raise InfeasibleConfigurationError(num_bins, target_false_positives, lower_bound)


def _binary_search_smallest(objective, low: int, high: int, target: float) -> int:
    """Smallest integer L in [low, high] with objective(L) <= target.

    Valid because the objective is strictly decreasing on the fast region and
    objective(high) is known to satisfy the target.
    """
    while low < high:
        mid = (low + high) // 2
        if objective(mid) <= target:
            high = mid
        else:
            low = mid + 1
    return low
