"""IoU Sketch — the paper's primary contribution.

The Intersection-of-Unions Sketch is an L-layer hash table over keywords.
Each layer hashes every keyword into one of B/L bins; each bin stores the
*union* of the postings lists of the keywords mapped to it (a super postings
list).  A query fetches the keyword's L superposts in a single batch of
parallel reads and intersects them; false positives shrink exponentially
with L while recall stays perfect.

This package contains the sketch itself plus its statistical machinery:

* :mod:`repro.core.hashing` — seeded pairwise-independent hash family.
* :mod:`repro.core.superpost` — super postings lists (union / intersection).
* :mod:`repro.core.sketch` — the in-memory IoU Sketch (insert / query).
* :mod:`repro.core.mht` — the Multilayer Hash Table kept in Searcher memory.
* :mod:`repro.core.analysis` — expected-false-positive formulas (Eq. 1–3, 5, 6).
* :mod:`repro.core.optimizer` — Algorithm 1 (layer minimization, Lemmas 1–3).
* :mod:`repro.core.common_words` — exact bins for the most common words.
* :mod:`repro.core.config` — user-facing sketch configuration.
"""

from repro.core.analysis import (
    approx_false_positive_probability,
    expected_false_positives,
    false_positive_probability,
    hoeffding_deviation,
    lemma1_lower_bound,
    optimal_layer_for_document,
    top_k_sample_size,
)
from repro.core.common_words import CommonWordTable, select_common_words
from repro.core.config import SketchConfig
from repro.core.hashing import HashFamily, LayeredHasher
from repro.core.mht import BinPointer, MultilayerHashTable
from repro.core.optimizer import InfeasibleConfigurationError, minimize_layers
from repro.core.sketch import IoUSketch
from repro.core.superpost import Superpost

__all__ = [
    "BinPointer",
    "CommonWordTable",
    "HashFamily",
    "InfeasibleConfigurationError",
    "IoUSketch",
    "LayeredHasher",
    "MultilayerHashTable",
    "SketchConfig",
    "Superpost",
    "approx_false_positive_probability",
    "expected_false_positives",
    "false_positive_probability",
    "hoeffding_deviation",
    "lemma1_lower_bound",
    "minimize_layers",
    "optimal_layer_for_document",
    "select_common_words",
    "top_k_sample_size",
]
