"""Statistical analysis of IoU Sketch accuracy.

Implements the formulas of Section IV-A:

* Equation 1 — the exact false-positive probability q_i(L) of document i for
  an irrelevant query word, and its approximation q̂_i(L).
* Equation 2 — the expected number of false positives per query
  F(L) = Σ_i c_i q_i(L).
* Lemma 1 — the per-document minimizer L*_i = (B/|W_i|) ln 2 and the induced
  lower bound Σ_i c_i 2^(−L*_i) used as the feasibility check of Algorithm 1.
* Equation 5 — the Hoeffding concentration bound on the observed number of
  false positives.
* Equation 6 — the top-K sample size R_K.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.profiling.distributions import QueryWordDistribution
from repro.profiling.profiler import CorpusProfile

__all__ = [
    "approx_false_positive_probability",
    "expected_false_positives",
    "false_positive_probability",
    "fast_region_limit",
    "hoeffding_deviation",
    "lemma1_lower_bound",
    "optimal_layer_for_document",
    "slow_region_limit",
    "top_k_sample_size",
]


def false_positive_probability(num_layers: float, num_bins: int, distinct_words: int) -> float:
    """Exact q_i(L) of Equation 1.

    Probability that document i (with ``distinct_words`` = |W_i| distinct
    words) appears in the intersection for a query word it does not contain,
    given ``num_bins`` = B total bins split across ``num_layers`` = L layers.
    """
    _validate_structure(num_layers, num_bins)
    if distinct_words < 0:
        raise ValueError("distinct_words must be non-negative")
    if distinct_words == 0:
        return 0.0
    bins_per_layer = num_bins / num_layers
    if bins_per_layer <= 1.0:
        # A single bin per layer makes every document a certain false positive.
        return 1.0
    per_layer = 1.0 - (1.0 - 1.0 / bins_per_layer) ** distinct_words
    return float(per_layer**num_layers)


def approx_false_positive_probability(
    num_layers: float, num_bins: int, distinct_words: int
) -> float:
    """Approximate q̂_i(L) = (1 − e^(−|W_i|·L/B))^L of Equation 1."""
    _validate_structure(num_layers, num_bins)
    if distinct_words < 0:
        raise ValueError("distinct_words must be non-negative")
    if distinct_words == 0:
        return 0.0
    z = 1.0 - math.exp(-distinct_words * num_layers / num_bins)
    return float(z**num_layers)


def expected_false_positives(
    num_layers: float,
    num_bins: int,
    profile: CorpusProfile | Sequence[int],
    distribution: QueryWordDistribution | None = None,
    exact: bool = True,
) -> float:
    """Expected number of false positives per query, F(L) of Equation 2.

    ``profile`` may be a :class:`CorpusProfile` or a raw sequence of per-
    document distinct word counts |W_i| (in which case a uniform query prior
    with c_i ≈ 1 is assumed, matching the worst case in the paper's remarks).
    ``exact`` selects between q_i (True) and the approximation q̂_i (False).
    """
    _validate_structure(num_layers, num_bins)
    sizes, weights = _aggregate_documents(profile, distribution)
    if sizes.size == 0:
        return 0.0
    if exact:
        bins_per_layer = num_bins / num_layers
        if bins_per_layer <= 1.0:
            probabilities = np.ones_like(sizes, dtype=float)
        else:
            per_layer = 1.0 - (1.0 - 1.0 / bins_per_layer) ** sizes
            probabilities = per_layer**num_layers
    else:
        z = 1.0 - np.exp(-sizes * num_layers / num_bins)
        probabilities = z**num_layers
    return float(np.dot(weights, probabilities))


def optimal_layer_for_document(num_bins: int, distinct_words: int) -> float:
    """Lemma 1: the per-document minimizer L*_i = (B / |W_i|) · ln 2."""
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if distinct_words <= 0:
        raise ValueError("distinct_words must be positive")
    return num_bins / distinct_words * math.log(2.0)


def lemma1_lower_bound(
    num_bins: int,
    profile: CorpusProfile | Sequence[int],
    distribution: QueryWordDistribution | None = None,
) -> float:
    """Lower bound Σ_i c_i·2^(−L*_i) ≤ F(L) from Lemma 1.

    Used by Algorithm 1 as a cheap feasibility check: if even this bound
    exceeds the target F₀, no number of layers can satisfy the constraint.
    """
    sizes, weights = _aggregate_documents(profile, distribution)
    if sizes.size == 0:
        return 0.0
    exponents = num_bins / sizes * math.log(2.0)
    # 2^(-L*) underflows harmlessly to zero for very small documents.
    with np.errstate(over="ignore", under="ignore"):
        terms = np.exp2(-exponents)
    return float(np.dot(weights, terms))


def fast_region_limit(num_bins: int, profile: CorpusProfile | Sequence[int]) -> float:
    """L_min = min_i L*_i = (B / max_i |W_i|) · ln 2 (Lemma 2).

    For L < L_min, F̂(L) is strictly (exponentially) decreasing, so Algorithm 1
    can binary-search this region.
    """
    sizes = _document_sizes(profile)
    positive = [size for size in sizes if size > 0]
    if not positive:
        return float(num_bins)
    return optimal_layer_for_document(num_bins, max(positive))


def slow_region_limit(num_bins: int, profile: CorpusProfile | Sequence[int]) -> float:
    """L_max = max_i L*_i = (B / min_i |W_i|) · ln 2 (Lemma 3).

    For L > L_max, F̂(L) is strictly increasing, so no solution can lie beyond
    it and Algorithm 1 stops its iterative search there.
    """
    sizes = _document_sizes(profile)
    positive = [size for size in sizes if size > 0]
    if not positive:
        return float(num_bins)
    return optimal_layer_for_document(num_bins, min(positive))


def hoeffding_deviation(sigma_x: float, delta: float) -> float:
    """Deviation bound ε such that Pr[X ≥ F(L) + ε] ≤ δ (Equation 5).

    ε = sqrt(σ_X² · ln(1/δ) / 2) where σ_X² = Σ_i Σ_{w∉W_i} p_w².
    """
    if sigma_x < 0:
        raise ValueError("sigma_x must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return math.sqrt(0.5 * sigma_x**2 * math.log(1.0 / delta))


def top_k_sample_size(
    k: int, num_postings: int, expected_false_positives_f0: float, delta: float
) -> int:
    """Number of postings to sample for a top-K query (Equation 6).

    Given a final postings list with R = ``num_postings`` entries of which F₀
    are expected to be false positives, sampling R_K postings guarantees at
    least K relevant documents with probability ≥ 1 − δ.  When K ≥ R − F₀ the
    whole list must be fetched.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if num_postings < 0:
        raise ValueError("num_postings must be non-negative")
    if expected_false_positives_f0 < 0:
        raise ValueError("expected_false_positives_f0 must be non-negative")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if num_postings == 0:
        return 0
    if k >= num_postings - expected_false_positives_f0:
        return num_postings
    success_probability = 1.0 - expected_false_positives_f0 / num_postings
    if success_probability <= 0:
        return num_postings
    log_term = 0.5 * math.log(1.0 / delta)
    discriminant = (2 * success_probability * k + log_term) ** 2 - 4 * (
        success_probability**2
    ) * (k**2)
    discriminant = max(discriminant, 0.0)
    sample = (2 * success_probability * k + log_term + math.sqrt(discriminant)) / (
        2 * success_probability**2
    )
    return min(num_postings, int(math.ceil(sample)))


# -- internal helpers --------------------------------------------------------------


def _validate_structure(num_layers: float, num_bins: int) -> None:
    if num_bins <= 0:
        raise ValueError("num_bins must be positive")
    if num_layers < 1 or num_layers > num_bins:
        raise ValueError(f"num_layers must satisfy 1 <= L <= B, got L={num_layers}, B={num_bins}")


def _document_sizes(profile: CorpusProfile | Sequence[int]) -> list[int]:
    if isinstance(profile, CorpusProfile):
        return list(profile.distinct_words_per_document)
    return list(profile)


def _aggregate_documents(
    profile: CorpusProfile | Sequence[int],
    distribution: QueryWordDistribution | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Group documents by |W_i| and sum their c_i weights.

    Evaluating F(L) touches every document; grouping identical sizes keeps the
    optimizer fast even for corpora with millions of documents.
    """
    if isinstance(profile, CorpusProfile):
        sizes = np.asarray(profile.distinct_words_per_document, dtype=float)
        weights = np.asarray(profile.irrelevance_coefficients(distribution), dtype=float)
    else:
        sizes = np.asarray(list(profile), dtype=float)
        weights = np.ones_like(sizes)
    if sizes.size == 0:
        return sizes, weights
    mask = sizes > 0
    sizes = sizes[mask]
    weights = weights[mask]
    if sizes.size == 0:
        return sizes, weights
    unique_sizes, inverse = np.unique(sizes, return_inverse=True)
    grouped_weights = np.zeros_like(unique_sizes)
    np.add.at(grouped_weights, inverse, weights)
    return unique_sizes, grouped_weights
