"""Seeded pairwise-independent hashing for IoU Sketch layers.

Each IoU Sketch layer needs its own hash function mapping keywords to bins.
The accuracy analysis (Section IV-A) assumes a pairwise-independent family,
which we realize with the classic Carter–Wegman construction
``h(x) = ((a·x + b) mod p) mod m`` over a 61-bit Mersenne prime, applied to a
stable 64-bit digest of the keyword.  Only the integer seeds need to be
persisted to reconstruct the functions at Searcher initialization time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Mersenne prime 2^61 - 1, comfortably larger than any 60-bit digest.
_MERSENNE_PRIME = (1 << 61) - 1


def stable_word_digest(word: str) -> int:
    """Deterministic 60-bit integer digest of a keyword.

    Python's builtin ``hash`` is randomized per process, so we use BLAKE2b to
    obtain a digest that is stable across runs (the sketch must hash words to
    the same bins at build time and at query time, possibly in different
    processes).
    """
    digest = hashlib.blake2b(word.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % _MERSENNE_PRIME


@dataclass(frozen=True)
class HashFamily:
    """One pairwise-independent hash function ``h: str -> [0, num_bins)``."""

    multiplier: int
    addend: int
    num_bins: int

    def __post_init__(self) -> None:
        if self.num_bins <= 0:
            raise ValueError("num_bins must be positive")
        if not 1 <= self.multiplier < _MERSENNE_PRIME:
            raise ValueError("multiplier must be in [1, p)")
        if not 0 <= self.addend < _MERSENNE_PRIME:
            raise ValueError("addend must be in [0, p)")

    @classmethod
    def from_seed(cls, seed: int, num_bins: int) -> "HashFamily":
        """Derive (a, b) deterministically from an integer seed."""
        digest = hashlib.blake2b(seed.to_bytes(8, "big", signed=False), digest_size=16).digest()
        multiplier = (int.from_bytes(digest[:8], "big") % (_MERSENNE_PRIME - 1)) + 1
        addend = int.from_bytes(digest[8:], "big") % _MERSENNE_PRIME
        return cls(multiplier=multiplier, addend=addend, num_bins=num_bins)

    def bin_of(self, word: str) -> int:
        """Bin index of ``word`` within this layer."""
        return self.bin_of_digest(stable_word_digest(word))

    def bin_of_digest(self, digest: int) -> int:
        """Bin index of a pre-computed word digest."""
        return ((self.multiplier * digest + self.addend) % _MERSENNE_PRIME) % self.num_bins


@dataclass(frozen=True)
class LayeredHasher:
    """The full set of L layer hash functions of one IoU Sketch.

    Reconstructible from ``(seed, bins_per_layer)`` alone, which is exactly
    what the Builder persists in the index header block.
    """

    layers: tuple[HashFamily, ...]
    seed: int

    @classmethod
    def build(cls, num_layers: int, bins_per_layer: int, seed: int = 0) -> "LayeredHasher":
        """Construct ``num_layers`` independent hash functions."""
        if num_layers <= 0:
            raise ValueError("num_layers must be positive")
        if bins_per_layer <= 0:
            raise ValueError("bins_per_layer must be positive")
        layers = tuple(
            HashFamily.from_seed(seed * 1_000_003 + layer_index, bins_per_layer)
            for layer_index in range(num_layers)
        )
        return cls(layers=layers, seed=seed)

    @property
    def num_layers(self) -> int:
        """Number of layers L."""
        return len(self.layers)

    @property
    def bins_per_layer(self) -> int:
        """Number of bins per layer (B / L)."""
        return self.layers[0].num_bins

    def bins_of(self, word: str) -> list[int]:
        """The bin index of ``word`` in every layer (length L)."""
        digest = stable_word_digest(word)
        return [layer.bin_of_digest(digest) for layer in self.layers]
