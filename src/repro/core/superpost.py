"""Super postings lists.

A superpost is the union of the postings lists of every keyword hashed into
one bin.  Queries intersect the L superposts of a keyword; document postings
are (blob, offset, length) references, so intersection is plain set
intersection over :class:`~repro.parsing.documents.Posting` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.parsing.documents import Posting


@dataclass
class Superpost:
    """A merged postings list stored in one IoU Sketch bin."""

    postings: set[Posting] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __contains__(self, posting: Posting) -> bool:
        return posting in self.postings

    def add_all(self, postings: Iterable[Posting]) -> None:
        """Union this superpost with ``postings`` in place (insert path)."""
        self.postings.update(postings)

    def union(self, other: "Superpost") -> "Superpost":
        """Return a new superpost containing both postings sets."""
        return Superpost(self.postings | other.postings)

    def intersect(self, other: "Superpost") -> "Superpost":
        """Return a new superpost with only the common postings (query path)."""
        return Superpost(self.postings & other.postings)

    def sorted_postings(self) -> list[Posting]:
        """Postings in a deterministic (blob, offset, length) order."""
        return sorted(self.postings)

    @staticmethod
    def intersect_all(superposts: Iterable["Superpost"]) -> "Superpost":
        """Intersection of several superposts (the final postings list).

        An empty input produces an empty superpost, matching the behaviour of
        querying a word that was never inserted.
        """
        result: set[Posting] | None = None
        for superpost in superposts:
            if result is None:
                result = set(superpost.postings)
            else:
                result &= superpost.postings
            if not result:
                break
        return Superpost(result if result is not None else set())

    @staticmethod
    def union_all(superposts: Iterable["Superpost"]) -> "Superpost":
        """Union of several superposts (used by Boolean OR queries)."""
        merged: set[Posting] = set()
        for superpost in superposts:
            merged |= superpost.postings
        return Superpost(merged)
