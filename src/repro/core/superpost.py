"""Super postings lists.

A superpost is the union of the postings lists of every keyword hashed into
one bin.  Queries intersect the L superposts of a keyword; document postings
are (blob, offset, length) references, so intersection is plain set
intersection over :class:`~repro.parsing.documents.Posting` values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.parsing.documents import Posting


@dataclass
class Superpost:
    """A merged postings list stored in one IoU Sketch bin.

    Postings are held as a set (intersection/union are the query-path
    operations); the deterministic ``(blob, offset, length)`` order that
    serialization and document retrieval need is memoized in ``_sorted`` so
    the decode hot path — which receives postings already in that order —
    never re-sorts.
    """

    postings: set[Posting] = field(default_factory=set)
    #: Memoized sorted order; ``None`` until computed (or after mutation).
    _sorted: tuple[Posting, ...] | None = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_sorted(cls, ordered: Sequence[Posting]) -> "Superpost":
        """Build a superpost from postings already in sorted order.

        The decoder's fast path: serialized superposts store postings in
        ``(blob, offset, length)`` order, so the sorted view comes for free
        and :meth:`sorted_postings` never has to sort.
        """
        superpost = cls(set(ordered))
        if len(superpost.postings) == len(ordered):
            superpost._sorted = tuple(ordered)
        return superpost

    def __len__(self) -> int:
        return len(self.postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __contains__(self, posting: Posting) -> bool:
        return posting in self.postings

    def add_all(self, postings: Iterable[Posting]) -> None:
        """Union this superpost with ``postings`` in place (insert path)."""
        self.postings.update(postings)
        self._sorted = None

    def union(self, other: "Superpost") -> "Superpost":
        """Return a new superpost containing both postings sets."""
        return Superpost(self.postings | other.postings)

    def intersect(self, other: "Superpost") -> "Superpost":
        """Return a new superpost with only the common postings (query path)."""
        return Superpost(self.postings & other.postings)

    def sorted_postings(self) -> list[Posting]:
        """Postings in a deterministic (blob, offset, length) order.

        The order is computed once and memoized; superposts built by
        :meth:`from_sorted` (the decode path) never sort at all.
        """
        if self._sorted is None or len(self._sorted) != len(self.postings):
            self._sorted = tuple(sorted(self.postings))
        return list(self._sorted)

    @staticmethod
    def intersect_all(superposts: Iterable["Superpost"]) -> "Superpost":
        """Intersection of several superposts (the final postings list).

        An empty input produces an empty superpost, matching the behaviour of
        querying a word that was never inserted.
        """
        result: set[Posting] | None = None
        for superpost in superposts:
            if result is None:
                result = set(superpost.postings)
            else:
                result &= superpost.postings
            if not result:
                break
        return Superpost(result if result is not None else set())

    @staticmethod
    def union_all(superposts: Iterable["Superpost"]) -> "Superpost":
        """Union of several superposts (used by Boolean OR queries)."""
        merged: set[Posting] = set()
        for superpost in superposts:
            merged |= superpost.postings
        return Superpost(merged)
