"""Exact handling of common words.

Merging the huge postings lists of very frequent words into hashed bins would
pollute every superpost that shares those bins.  Airphant instead reserves a
small fraction of the bin budget (1 % by default) to store the *exact*
postings lists of the most common words; queries for those words bypass the
hashed layers entirely (Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.superpost import Superpost
from repro.parsing.documents import Posting
from repro.profiling.profiler import CorpusProfile


def select_common_words(profile: CorpusProfile, num_slots: int) -> list[str]:
    """Choose the words that get exact bins: highest document frequency first.

    Returns at most ``num_slots`` words, deterministically ordered.
    """
    if num_slots <= 0:
        return []
    return profile.most_common_words(num_slots)


@dataclass
class CommonWordTable:
    """Exact word → postings map for the reserved common-word bins."""

    postings_by_word: dict[str, Superpost] = field(default_factory=dict)

    def __contains__(self, word: str) -> bool:
        return word in self.postings_by_word

    def __len__(self) -> int:
        return len(self.postings_by_word)

    @property
    def words(self) -> set[str]:
        """The words handled exactly."""
        return set(self.postings_by_word)

    def register(self, word: str) -> None:
        """Reserve an exact bin for ``word`` before any postings arrive.

        The Builder registers the selected common words up front so that the
        sketch's insert path routes their postings here instead of polluting
        the hashed bins.
        """
        self.postings_by_word.setdefault(word, Superpost())

    def add(self, word: str, postings: Iterable[Posting]) -> None:
        """Record (or extend) the exact postings list of ``word``."""
        superpost = self.postings_by_word.setdefault(word, Superpost())
        superpost.add_all(postings)

    def query(self, word: str) -> Superpost:
        """Exact postings list of ``word`` (empty if not a common word)."""
        superpost = self.postings_by_word.get(word)
        if superpost is None:
            return Superpost()
        return Superpost(set(superpost.postings))
