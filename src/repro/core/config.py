"""User-facing IoU Sketch configuration.

Mirrors the knobs described in Sections III-C and V-A: the bin budget B (or a
memory limit from which B is derived), the accuracy target F₀, the fraction
of bins reserved for common words, the top-K failure probability δ, and the
download concurrency.  The number of layers is normally chosen by the
optimizer; users can pin it explicitly to skip profiling and optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Approximate in-memory bytes per MHT bin pointer (blob id + offset + length).
BYTES_PER_BIN_POINTER = 20


@dataclass(frozen=True)
class SketchConfig:
    """Configuration of one IoU Sketch / Airphant index.

    Attributes
    ----------
    num_bins:
        Total bin budget B across all layers (paper default 10⁵).
    target_false_positives:
        Accuracy constraint F₀: expected irrelevant documents per query
        (paper default 1.0).
    num_layers:
        Optional explicit layer count; ``None`` lets the Builder run
        Algorithm 1.
    common_word_fraction:
        Fraction of bins set aside to store *exact* postings lists for the
        most common words (paper default 1 %).
    top_k_delta:
        Failure probability δ of the top-K sampling guarantee (paper default
        10⁻⁶).
    max_concurrency:
        Number of parallel download threads (paper default 32).
    seed:
        Seed of the layer hash functions.
    max_layers:
        Hard cap on the optimizer's layer count, bounding query fan-out.
    """

    num_bins: int = 100_000
    target_false_positives: float = 1.0
    num_layers: int | None = None
    common_word_fraction: float = 0.01
    top_k_delta: float = 1e-6
    max_concurrency: int = 32
    seed: int = 0
    max_layers: int = 64
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_bins <= 0:
            raise ValueError("num_bins must be positive")
        if self.target_false_positives < 0:
            raise ValueError("target_false_positives must be non-negative")
        if self.num_layers is not None and self.num_layers <= 0:
            raise ValueError("num_layers must be positive when specified")
        if not 0.0 <= self.common_word_fraction < 1.0:
            raise ValueError("common_word_fraction must be in [0, 1)")
        if not 0.0 < self.top_k_delta < 1.0:
            raise ValueError("top_k_delta must be in (0, 1)")
        if self.max_concurrency <= 0:
            raise ValueError("max_concurrency must be positive")
        if self.max_layers <= 0:
            raise ValueError("max_layers must be positive")

    @classmethod
    def from_memory_budget(
        cls, memory_bytes: int, **overrides: object
    ) -> "SketchConfig":
        """Derive the bin budget from a Searcher memory limit.

        The MHT footprint is dominated by one pointer per bin, so
        B ≈ memory / bytes-per-pointer.
        """
        if memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        num_bins = max(1, memory_bytes // BYTES_PER_BIN_POINTER)
        return cls(num_bins=int(num_bins), **overrides)  # type: ignore[arg-type]

    @property
    def sketch_bins(self) -> int:
        """Bins available to the hashed sketch (excludes common-word bins)."""
        reserved = self.common_word_bins
        return max(1, self.num_bins - reserved)

    @property
    def common_word_bins(self) -> int:
        """Bins reserved for exact postings lists of the most common words."""
        return int(self.num_bins * self.common_word_fraction)

    @property
    def estimated_memory_bytes(self) -> int:
        """Approximate Searcher memory footprint of the MHT."""
        return self.num_bins * BYTES_PER_BIN_POINTER

    def with_layers(self, num_layers: int) -> "SketchConfig":
        """Return a copy with an explicit layer count."""
        return SketchConfig(
            num_bins=self.num_bins,
            target_false_positives=self.target_false_positives,
            num_layers=num_layers,
            common_word_fraction=self.common_word_fraction,
            top_k_delta=self.top_k_delta,
            max_concurrency=self.max_concurrency,
            seed=self.seed,
            max_layers=self.max_layers,
            metadata=dict(self.metadata),
        )
