"""Multilayer Hash Table (MHT).

The MHT is the small in-memory half of a persisted IoU Sketch: the layer hash
seeds plus, for every bin, a pointer ``(blob, offset, length)`` to that bin's
serialized superpost inside the compacted superpost blob.  It also carries
the exact pointers of common words.  The Searcher downloads the MHT once at
initialization; every later query is answered with a single parallel batch
of range reads resolved through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.hashing import LayeredHasher
from repro.storage.base import RangeRead


@dataclass(frozen=True)
class BinPointer:
    """Location of one serialized superpost inside the compacted blob."""

    blob: str
    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValueError("offset and length must be non-negative")

    def to_range_read(self) -> RangeRead:
        """The range read that fetches this superpost."""
        return RangeRead(blob=self.blob, offset=self.offset, length=self.length)

    @property
    def is_empty(self) -> bool:
        """True for bins that received no postings at build time."""
        return self.length == 0


@dataclass
class MultilayerHashTable:
    """Hash seeds plus per-bin superpost pointers (Searcher-resident state)."""

    hasher: LayeredHasher
    pointers: list[list[BinPointer]]
    common_word_pointers: dict[str, BinPointer] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.pointers) != self.hasher.num_layers:
            raise ValueError("one pointer table required per layer")
        for layer in self.pointers:
            if len(layer) != self.hasher.bins_per_layer:
                raise ValueError("pointer table size must match bins per layer")

    # -- structure -------------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        """Number of layers L."""
        return self.hasher.num_layers

    @property
    def bins_per_layer(self) -> int:
        """Number of bins in each layer."""
        return self.hasher.bins_per_layer

    @property
    def num_common_words(self) -> int:
        """Number of words with exact (common-word) pointers."""
        return len(self.common_word_pointers)

    def memory_bytes(self, bytes_per_pointer: int = 20) -> int:
        """Approximate in-memory footprint of the MHT."""
        num_pointers = self.num_layers * self.bins_per_layer + self.num_common_words
        return num_pointers * bytes_per_pointer

    # -- lookups ---------------------------------------------------------------------

    def is_common(self, word: str) -> bool:
        """Whether ``word`` is answered from an exact common-word bin."""
        return word in self.common_word_pointers

    def pointers_for(self, word: str) -> list[BinPointer]:
        """The superpost pointers a query for ``word`` must fetch.

        Returns a single pointer for common words and one pointer per layer
        otherwise.  Empty bins are included (the Searcher skips zero-length
        reads) so the caller always knows which layer produced which payload.
        """
        if word in self.common_word_pointers:
            return [self.common_word_pointers[word]]
        return [
            self.pointers[layer_index][bin_index]
            for layer_index, bin_index in enumerate(self.hasher.bins_of(word))
        ]

    def range_reads_for(self, word: str) -> list[RangeRead]:
        """Range reads for the non-empty superposts of ``word``."""
        return [
            pointer.to_range_read()
            for pointer in self.pointers_for(word)
            if not pointer.is_empty
        ]
