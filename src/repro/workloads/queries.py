"""Query workload generation.

The paper's benchmarks issue single-keyword queries drawn from the corpus
vocabulary (uniform by default, matching the Builder's assumed query prior)
and top-K = 10 retrieval.  :func:`sample_query_words` produces such query
streams deterministically; :class:`QueryWorkload` bundles them with the top-K
setting so the benchmark harness can replay identical workloads against every
engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.profiling.profiler import CorpusProfile


def sample_query_words(
    profile: CorpusProfile,
    num_queries: int,
    seed: int = 0,
    mode: str = "uniform",
) -> list[str]:
    """Sample query keywords from a corpus profile.

    ``mode`` is ``"uniform"`` (every vocabulary word equally likely, the
    paper's default assumption) or ``"occurrence"`` (words weighted by how
    often they occur, a heavier-traffic head).
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    vocabulary = sorted(profile.vocabulary)
    if not vocabulary:
        raise ValueError("cannot sample queries from an empty vocabulary")
    rng = np.random.default_rng(seed)
    if mode == "uniform":
        indices = rng.integers(0, len(vocabulary), size=num_queries)
        return [vocabulary[int(index)] for index in indices]
    if mode == "occurrence":
        counts = np.asarray([profile.word_counts[word] for word in vocabulary], dtype=float)
        probabilities = counts / counts.sum()
        indices = rng.choice(len(vocabulary), size=num_queries, p=probabilities)
        return [vocabulary[int(index)] for index in indices]
    raise ValueError(f"unknown query sampling mode {mode!r}; expected uniform or occurrence")


@dataclass(frozen=True)
class QueryWorkload:
    """A replayable stream of keyword queries."""

    queries: tuple[str, ...]
    top_k: int | None = 10

    def __post_init__(self) -> None:
        if self.top_k is not None and self.top_k <= 0:
            raise ValueError("top_k must be positive when specified")
        if not self.queries:
            raise ValueError("a workload needs at least one query")

    @classmethod
    def from_profile(
        cls,
        profile: CorpusProfile,
        num_queries: int,
        top_k: int | None = 10,
        seed: int = 0,
        mode: str = "uniform",
    ) -> "QueryWorkload":
        """Sample a workload of ``num_queries`` keyword queries."""
        return cls(
            queries=tuple(sample_query_words(profile, num_queries, seed=seed, mode=mode)),
            top_k=top_k,
        )

    def __len__(self) -> int:
        return len(self.queries)
