"""Log-corpus generators shaped like LogHub's HDFS, Windows, and Spark logs.

The paper indexes three system-log corpora from LogHub.  Raw LogHub data is
not redistributable here, so each system is represented by a small set of
log-line *templates* with randomized parameters (block ids, hosts, sizes,
durations), which reproduces the property that matters to a term index: a
modest set of very frequent template words plus a long tail of
parameter-derived terms, with short documents (one log line each).  Corpus
sizes are scaled down; the scale factor is reported in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.synthetic import GeneratedCorpus, _write_corpus


@dataclass(frozen=True)
class _LogSystem:
    """Template set of one logging system."""

    name: str
    templates: tuple[str, ...]
    #: Approximate cardinality of each parameter placeholder.
    parameter_cardinality: int


LOG_SYSTEMS: dict[str, _LogSystem] = {
    "hdfs": _LogSystem(
        name="hdfs",
        templates=(
            "INFO dfs.DataNode PacketResponder {id} for block blk_{block} terminating",
            "INFO dfs.FSNamesystem BLOCK NameSystem.addStoredBlock blockMap updated {host} is added to blk_{block} size {size}",
            "INFO dfs.DataNode Receiving block blk_{block} src {host} dest {host2}",
            "WARN dfs.DataNode Slow BlockReceiver write packet to mirror took {size} ms",
            "INFO dfs.DataNode Served block blk_{block} to {host}",
            "ERROR dfs.DataNode DataXceiver error processing WRITE_BLOCK operation src {host} dst {host2}",
        ),
        parameter_cardinality=2000,
    ),
    "windows": _LogSystem(
        name="windows",
        templates=(
            "Info CBS Loaded Servicing Stack {version} with Core {path}",
            "Info CSI {id} Performing {size} operations as boot critical",
            "Info CBS Appl applicability evaluated package_{block} state Installed",
            "Warning CBS Failed to get session package package_{block} hr {code}",
            "Info CBS Exec processing started package_{block} update {version}",
            "Error CSI {id} Corruption detected during repair of component {path}",
        ),
        parameter_cardinality=1200,
    ),
    "spark": _LogSystem(
        name="spark",
        templates=(
            "INFO executor.Executor Running task {id} in stage {block} TID {size}",
            "INFO storage.BlockManager Found block rdd_{block} locally",
            "INFO scheduler.TaskSetManager Finished task {id} in stage {block} in {size} ms on {host}",
            "INFO storage.MemoryStore Block broadcast_{block} stored as values in memory estimated size {size} KB",
            "WARN scheduler.TaskSetManager Lost task {id} in stage {block} on {host} executor {id}",
            "ERROR executor.Executor Exception in task {id} in stage {block} java.io.IOException",
        ),
        parameter_cardinality=3000,
    ),
}


def generate_log_corpus(
    store,
    system: str,
    num_documents: int,
    name: str | None = None,
    seed: int = 0,
) -> GeneratedCorpus:
    """Generate a log corpus for ``system`` (``hdfs``, ``windows`` or ``spark``)."""
    try:
        spec = LOG_SYSTEMS[system.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log system {system!r}; expected one of {sorted(LOG_SYSTEMS)}"
        ) from None
    if num_documents <= 0:
        raise ValueError("num_documents must be positive")

    rng = np.random.default_rng(seed)
    cardinality = spec.parameter_cardinality
    template_indices = rng.integers(0, len(spec.templates), size=num_documents)
    lines: list[str] = []
    for template_index in template_indices:
        template = spec.templates[int(template_index)]
        line = template.format(
            id=int(rng.integers(0, 64)),
            block=int(rng.integers(0, cardinality)),
            host=f"node{int(rng.integers(0, cardinality // 10 + 1))}",
            host2=f"node{int(rng.integers(0, cardinality // 10 + 1))}",
            size=int(rng.integers(1, 100_000)),
            version=f"v{int(rng.integers(1, 40))}.{int(rng.integers(0, 10))}",
            path=f"path{int(rng.integers(0, cardinality))}",
            code=f"0x{int(rng.integers(0, 2**16)):04x}",
        )
        lines.append(line)
    corpus_name = name if name is not None else spec.name
    return _write_corpus(store, corpus_name, lines)
