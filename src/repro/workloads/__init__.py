"""Workload and corpus generators.

The paper evaluates on four real corpora (Cranfield plus the HDFS, Windows
and Spark logs from LogHub) and three synthetic families (``diag``, ``unif``,
``zipf``).  The real corpora cannot be redistributed here, so this package
generates synthetic stand-ins with the same *shape*: log-template corpora
whose document/term statistics mirror Table II (scaled down), a
Cranfield-like corpus of research-abstract documents, and the exact synthetic
families of the paper.  All generators are deterministic given a seed and
write their corpora as line-delimited blobs to an object store, exactly how
Airphant expects to find them.
"""

from repro.workloads.cranfield import generate_cranfield
from repro.workloads.logs import LOG_SYSTEMS, generate_log_corpus
from repro.workloads.queries import QueryWorkload, sample_query_words
from repro.workloads.synthetic import (
    GeneratedCorpus,
    SyntheticSpec,
    generate_diag,
    generate_synthetic,
    generate_unif,
    generate_zipf,
)

__all__ = [
    "GeneratedCorpus",
    "LOG_SYSTEMS",
    "QueryWorkload",
    "SyntheticSpec",
    "generate_cranfield",
    "generate_diag",
    "generate_log_corpus",
    "generate_synthetic",
    "generate_unif",
    "generate_zipf",
    "sample_query_words",
]
