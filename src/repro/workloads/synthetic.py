"""Synthetic corpora: ``diag``, ``unif`` and ``zipf`` (Section V-A).

* ``diag(nd, nw, nl)`` — document i contains exactly one word w_i, so the
  number of words equals the number of documents.
* ``unif`` — each of the ``nl`` words of a document is drawn uniformly from a
  dictionary of ``nw`` words.
* ``zipf`` — like ``unif`` but words are drawn from a Zipfian distribution
  with exponent 1.07.

The paper identifies a synthetic dataset by the tuple
``(log10 nd, log10 nw, log10 nl)``; :class:`SyntheticSpec` mirrors that
notation while letting the reproduction scale the corpora down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document
from repro.storage.base import ObjectStore

#: Zipf exponent used by the paper's ``zipf`` datasets.
ZIPF_EXPONENT = 1.07


@dataclass(frozen=True)
class SyntheticSpec:
    """Size specification of a synthetic corpus (absolute counts)."""

    num_documents: int
    num_words: int
    words_per_document: int

    def __post_init__(self) -> None:
        if self.num_documents <= 0 or self.num_words <= 0:
            raise ValueError("num_documents and num_words must be positive")
        if self.words_per_document <= 0:
            raise ValueError("words_per_document must be positive")

    @classmethod
    def from_log10(cls, documents_exp: float, words_exp: float, length_exp: float) -> "SyntheticSpec":
        """Build a spec from the paper's (log₁₀ n_d, log₁₀ n_w, log₁₀ n_l) notation."""
        return cls(
            num_documents=int(round(10**documents_exp)),
            num_words=int(round(10**words_exp)),
            words_per_document=int(round(10**length_exp)),
        )


@dataclass
class GeneratedCorpus:
    """A corpus written to an object store plus its parsed documents."""

    name: str
    blob_names: list[str]
    documents: list[Document]

    @property
    def num_documents(self) -> int:
        """Number of generated documents."""
        return len(self.documents)


def _word(index: int) -> str:
    return f"w{index:07d}"


def _write_corpus(store: ObjectStore, name: str, lines: list[str]) -> GeneratedCorpus:
    blob_name = f"corpora/{name}.txt"
    data = "\n".join(lines).encode("utf-8")
    store.put(blob_name, data)
    parser = LineDelimitedCorpusParser()
    documents = list(parser.parse_blob(blob_name, data))
    return GeneratedCorpus(name=name, blob_names=[blob_name], documents=documents)


def generate_diag(store: ObjectStore, num_documents: int, name: str = "diag") -> GeneratedCorpus:
    """``diag`` corpus: document i contains only the word w_i."""
    if num_documents <= 0:
        raise ValueError("num_documents must be positive")
    lines = [_word(index) for index in range(num_documents)]
    return _write_corpus(store, name, lines)


def generate_unif(
    store: ObjectStore,
    spec: SyntheticSpec,
    name: str = "unif",
    seed: int = 0,
) -> GeneratedCorpus:
    """``unif`` corpus: words drawn uniformly from the dictionary."""
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, spec.num_words, size=(spec.num_documents, spec.words_per_document))
    lines = [" ".join(_word(int(index)) for index in row) for row in indices]
    return _write_corpus(store, name, lines)


def generate_zipf(
    store: ObjectStore,
    spec: SyntheticSpec,
    name: str = "zipf",
    seed: int = 0,
    exponent: float = ZIPF_EXPONENT,
) -> GeneratedCorpus:
    """``zipf`` corpus: word j drawn with probability proportional to 1/j^exponent."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, spec.num_words + 1, dtype=float)
    probabilities = 1.0 / ranks**exponent
    probabilities /= probabilities.sum()
    indices = rng.choice(
        spec.num_words, size=(spec.num_documents, spec.words_per_document), p=probabilities
    )
    lines = [" ".join(_word(int(index)) for index in row) for row in indices]
    return _write_corpus(store, name, lines)


def generate_synthetic(
    store: ObjectStore,
    family: str,
    spec: SyntheticSpec,
    name: str | None = None,
    seed: int = 0,
) -> GeneratedCorpus:
    """Generate a synthetic corpus by family name (``diag``, ``unif``, ``zipf``)."""
    corpus_name = name if name is not None else family
    if family == "diag":
        return generate_diag(store, spec.num_documents, name=corpus_name)
    if family == "unif":
        return generate_unif(store, spec, name=corpus_name, seed=seed)
    if family == "zipf":
        return generate_zipf(store, spec, name=corpus_name, seed=seed)
    raise ValueError(f"unknown synthetic family {family!r}; expected diag, unif, or zipf")
