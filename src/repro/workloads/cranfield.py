"""Cranfield-like corpus generator and relevance judgments.

The Cranfield 1400 collection (1398 abstracts of aerodynamics research
papers) cannot be bundled here, so this generator produces a corpus with the
same shape as the paper's Table II row: about 1.4 × 10³ documents, 5.3 × 10³
distinct terms, 1.2 × 10⁵ total words (≈ 85 words per abstract), with a
Zipfian term distribution typical of natural-language text.  The vocabulary
is synthesized from aerodynamics-flavoured stems and affixes so the examples
read plausibly, but only the statistics matter to the index structures.

For ranked retrieval (``mode="topk_bm25"``) the module adds the relevance
side of the Cranfield methodology:

* :func:`load_qrels` parses the collection's standard ``cranqrel`` judgment
  format (``query_id doc_id relevance`` triples) into per-query gain maps,
  so the real judgments drop in unchanged whenever the collection itself is
  available;
* :func:`generate_judged_queries` synthesizes judged queries *for the
  generated corpus*: each query is a pair of co-occurring technical terms,
  and each matching document receives a graded judgment derived from how
  often the query terms actually occur in it.  The grades are a coarse
  (bucketed) function of raw term counts — deliberately not the BM25 value
  — so ranking quality metrics against them measure real ordering skill,
  not a tautology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.workloads.synthetic import GeneratedCorpus, _write_corpus

#: Table II target shape for Cranfield.
DEFAULT_NUM_DOCUMENTS = 1398
DEFAULT_VOCABULARY_SIZE = 5300
DEFAULT_WORDS_PER_DOCUMENT = 85

_STEMS = [
    "aero", "shock", "boundary", "layer", "mach", "transonic", "supersonic", "hypersonic",
    "laminar", "turbulent", "viscous", "inviscid", "compressible", "wing", "airfoil", "flutter",
    "buckling", "panel", "shell", "cylinder", "cone", "wedge", "plate", "jet", "nozzle",
    "heat", "transfer", "stagnation", "pressure", "velocity", "gradient", "reynolds", "prandtl",
    "nusselt", "lift", "drag", "moment", "stability", "vibration", "stress", "strain", "fatigue",
    "creep", "thermal", "conduction", "radiation", "ablation", "reentry", "orbit", "trajectory",
]

_SUFFIXES = [
    "", "s", "ed", "ing", "ion", "ions", "al", "ic", "ity", "ive", "ally", "ment",
    "ance", "ous", "ized", "izing", "ization", "ability",
]

_CONNECTORS = [
    "the", "of", "and", "in", "for", "with", "on", "by", "at", "from", "is", "are",
    "an", "a", "to", "this", "that", "which", "be", "was",
]


def _build_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Deterministically synthesize ``size`` distinct technical terms."""
    vocabulary: list[str] = list(_CONNECTORS)
    seen = set(vocabulary)
    stem_count = len(_STEMS)
    suffix_count = len(_SUFFIXES)
    index = 0
    while len(vocabulary) < size:
        stem = _STEMS[index % stem_count]
        suffix = _SUFFIXES[(index // stem_count) % suffix_count]
        qualifier = index // (stem_count * suffix_count)
        word = f"{stem}{suffix}" if qualifier == 0 else f"{stem}{suffix}{qualifier}"
        if word not in seen:
            vocabulary.append(word)
            seen.add(word)
        index += 1
    technical_terms = vocabulary[len(_CONNECTORS):]
    rng.shuffle(technical_terms)
    vocabulary[len(_CONNECTORS):] = technical_terms
    return vocabulary[:size]


def generate_cranfield(
    store,
    num_documents: int = DEFAULT_NUM_DOCUMENTS,
    vocabulary_size: int = DEFAULT_VOCABULARY_SIZE,
    words_per_document: int = DEFAULT_WORDS_PER_DOCUMENT,
    name: str = "cranfield",
    seed: int = 0,
) -> GeneratedCorpus:
    """Generate the Cranfield-like corpus as one line-delimited blob."""
    if num_documents <= 0 or vocabulary_size <= 0 or words_per_document <= 0:
        raise ValueError("corpus dimensions must be positive")
    rng = np.random.default_rng(seed)
    vocabulary = _build_vocabulary(vocabulary_size, rng)

    # Zipfian term usage: frequent connectors first, long tail of technical terms.
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    probabilities = 1.0 / ranks**1.1
    probabilities /= probabilities.sum()

    lengths = np.clip(
        rng.normal(loc=words_per_document, scale=words_per_document * 0.3, size=num_documents),
        10,
        None,
    ).astype(int)
    lines = []
    for length in lengths:
        indices = rng.choice(vocabulary_size, size=int(length), p=probabilities)
        lines.append(" ".join(vocabulary[int(index)] for index in indices))
    return _write_corpus(store, name, lines)


# -- relevance judgments ------------------------------------------------------------


@dataclass(frozen=True)
class JudgedQuery:
    """One query with graded relevance judgments.

    ``judgments`` maps a document identifier (the 0-based line number for
    generated corpora, the collection's document id for real qrels) to its
    *gain*: 0 = not relevant, larger = more relevant.  Documents absent from
    the map are unjudged and count as gain 0.
    """

    query: str
    judgments: dict[int, int]


def load_qrels(text: str) -> dict[int, dict[int, int]]:
    """Parse the Cranfield ``cranqrel`` judgment file into gain maps.

    The standard format is one whitespace-separated ``query_id doc_id code``
    triple per line, where the historical relevance codes run 1 (a complete
    answer to the question) through 4 (of minimal interest) — *lower is
    better* — with stray ``-1`` entries meaning the same as 1.  The returned
    gains invert that scale into the higher-is-better convention every rank
    metric expects: code 1 → gain 4, code 4 → gain 1, anything outside the
    scale → gain 0.

    Blank and malformed lines are skipped (the distributed file contains a
    few), so the real ``cranqrel`` can be fed in verbatim.
    """
    qrels: dict[int, dict[int, int]] = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) < 3:
            continue
        try:
            query_id, doc_id, code = int(parts[0]), int(parts[1]), int(parts[2])
        except ValueError:
            continue
        if code == -1:
            code = 1
        gain = 5 - code if 1 <= code <= 4 else 0
        qrels.setdefault(query_id, {})[doc_id] = gain
    return qrels


def generate_judged_queries(
    corpus: GeneratedCorpus,
    num_queries: int = 20,
    seed: int = 0,
    min_df: int = 10,
    max_df: int = 400,
    min_matches: int = 12,
) -> list[JudgedQuery]:
    """Synthesize judged two-term queries for a generated Cranfield corpus.

    Query terms come from the mid-frequency technical band (``min_df`` ≤ df
    ≤ ``max_df``: frequent enough to have co-occurrences, rare enough to be
    discriminative), paired only when at least ``min_matches`` documents
    contain both.  A matching document's gain buckets the *total* count of
    query-term occurrences in it: 1–2 occurrences → 1, 3–4 → 2, 5–7 → 3,
    8+ → 4.  Judgments are keyed by the document's 0-based line number.
    """
    term_counts: list[Counter[str]] = [
        Counter(document.text.split()) for document in corpus.documents
    ]
    df: Counter[str] = Counter()
    for counts in term_counts:
        df.update(counts.keys())
    candidates = sorted(
        term
        for term, count in df.items()
        if min_df <= count <= max_df and term not in _CONNECTORS
    )
    rng = np.random.default_rng(seed)
    rng.shuffle(candidates)

    queries: list[JudgedQuery] = []
    used: set[tuple[str, str]] = set()
    for first in candidates:
        if len(queries) >= num_queries:
            break
        for second in candidates:
            if first >= second or (first, second) in used:
                continue
            judgments: dict[int, int] = {}
            for doc_id, counts in enumerate(term_counts):
                if counts[first] == 0 or counts[second] == 0:
                    continue
                total = counts[first] + counts[second]
                if total >= 8:
                    gain = 4
                elif total >= 5:
                    gain = 3
                elif total >= 3:
                    gain = 2
                else:
                    gain = 1
                judgments[doc_id] = gain
            if len(judgments) >= min_matches:
                used.add((first, second))
                queries.append(JudgedQuery(query=f"{first} {second}", judgments=judgments))
                break
    if len(queries) < num_queries:
        raise ValueError(
            f"could only synthesize {len(queries)} of {num_queries} judged queries; "
            "relax min_df/max_df/min_matches or grow the corpus"
        )
    return queries
