"""Cranfield-like corpus generator.

The Cranfield 1400 collection (1398 abstracts of aerodynamics research
papers) cannot be bundled here, so this generator produces a corpus with the
same shape as the paper's Table II row: about 1.4 × 10³ documents, 5.3 × 10³
distinct terms, 1.2 × 10⁵ total words (≈ 85 words per abstract), with a
Zipfian term distribution typical of natural-language text.  The vocabulary
is synthesized from aerodynamics-flavoured stems and affixes so the examples
read plausibly, but only the statistics matter to the index structures.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import GeneratedCorpus, _write_corpus

#: Table II target shape for Cranfield.
DEFAULT_NUM_DOCUMENTS = 1398
DEFAULT_VOCABULARY_SIZE = 5300
DEFAULT_WORDS_PER_DOCUMENT = 85

_STEMS = [
    "aero", "shock", "boundary", "layer", "mach", "transonic", "supersonic", "hypersonic",
    "laminar", "turbulent", "viscous", "inviscid", "compressible", "wing", "airfoil", "flutter",
    "buckling", "panel", "shell", "cylinder", "cone", "wedge", "plate", "jet", "nozzle",
    "heat", "transfer", "stagnation", "pressure", "velocity", "gradient", "reynolds", "prandtl",
    "nusselt", "lift", "drag", "moment", "stability", "vibration", "stress", "strain", "fatigue",
    "creep", "thermal", "conduction", "radiation", "ablation", "reentry", "orbit", "trajectory",
]

_SUFFIXES = [
    "", "s", "ed", "ing", "ion", "ions", "al", "ic", "ity", "ive", "ally", "ment",
    "ance", "ous", "ized", "izing", "ization", "ability",
]

_CONNECTORS = [
    "the", "of", "and", "in", "for", "with", "on", "by", "at", "from", "is", "are",
    "an", "a", "to", "this", "that", "which", "be", "was",
]


def _build_vocabulary(size: int, rng: np.random.Generator) -> list[str]:
    """Deterministically synthesize ``size`` distinct technical terms."""
    vocabulary: list[str] = list(_CONNECTORS)
    seen = set(vocabulary)
    stem_count = len(_STEMS)
    suffix_count = len(_SUFFIXES)
    index = 0
    while len(vocabulary) < size:
        stem = _STEMS[index % stem_count]
        suffix = _SUFFIXES[(index // stem_count) % suffix_count]
        qualifier = index // (stem_count * suffix_count)
        word = f"{stem}{suffix}" if qualifier == 0 else f"{stem}{suffix}{qualifier}"
        if word not in seen:
            vocabulary.append(word)
            seen.add(word)
        index += 1
    technical_terms = vocabulary[len(_CONNECTORS):]
    rng.shuffle(technical_terms)
    vocabulary[len(_CONNECTORS):] = technical_terms
    return vocabulary[:size]


def generate_cranfield(
    store,
    num_documents: int = DEFAULT_NUM_DOCUMENTS,
    vocabulary_size: int = DEFAULT_VOCABULARY_SIZE,
    words_per_document: int = DEFAULT_WORDS_PER_DOCUMENT,
    name: str = "cranfield",
    seed: int = 0,
) -> GeneratedCorpus:
    """Generate the Cranfield-like corpus as one line-delimited blob."""
    if num_documents <= 0 or vocabulary_size <= 0 or words_per_document <= 0:
        raise ValueError("corpus dimensions must be positive")
    rng = np.random.default_rng(seed)
    vocabulary = _build_vocabulary(vocabulary_size, rng)

    # Zipfian term usage: frequent connectors first, long tail of technical terms.
    ranks = np.arange(1, vocabulary_size + 1, dtype=float)
    probabilities = 1.0 / ranks**1.1
    probabilities /= probabilities.sum()

    lengths = np.clip(
        rng.normal(loc=words_per_document, scale=words_per_document * 0.3, size=num_documents),
        10,
        None,
    ).astype(int)
    lines = []
    for length in lengths:
        indices = rng.choice(vocabulary_size, size=int(length), p=probabilities)
        lines.append(" ".join(vocabulary[int(index)] for index in indices))
    return _write_corpus(store, name, lines)
