"""Query-word prior distributions.

The IoU Sketch accuracy objective F(L) weights each document's false-positive
probability by c_i = sum of the prior probabilities p_w of query words *not*
contained in that document (Equation 2).  The paper defaults to a uniform
prior over the corpus vocabulary and mentions occurrence-weighted and
user-provided priors as alternatives (Section IV-B); all three are available
here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class QueryWordDistribution:
    """Categorical prior over query words.

    ``probabilities`` maps each word to its prior probability; words absent
    from the mapping have probability zero.  The distribution need not sum
    exactly to one (user priors may be unnormalized); :meth:`normalized`
    rescales it.
    """

    probabilities: Mapping[str, float]

    def __post_init__(self) -> None:
        for word, probability in self.probabilities.items():
            if probability < 0:
                raise ValueError(f"negative probability for word {word!r}")

    @property
    def total_mass(self) -> float:
        """Sum of all probabilities (1.0 for a proper distribution)."""
        return float(sum(self.probabilities.values()))

    def probability(self, word: str) -> float:
        """Prior probability of ``word`` appearing in a query."""
        return float(self.probabilities.get(word, 0.0))

    def normalized(self) -> "QueryWordDistribution":
        """Return a copy rescaled to sum to one."""
        total = self.total_mass
        if total <= 0:
            raise ValueError("cannot normalize an all-zero distribution")
        return QueryWordDistribution(
            {word: probability / total for word, probability in self.probabilities.items()}
        )

    def sum_squares(self) -> float:
        """Σ p_w² over all words, used by the Hoeffding deviation bound."""
        return float(sum(probability**2 for probability in self.probabilities.values()))


def uniform_distribution(vocabulary: set[str] | list[str]) -> QueryWordDistribution:
    """Uniform prior p_w = 1/|W| over the corpus vocabulary (paper default)."""
    words = list(vocabulary)
    if not words:
        raise ValueError("vocabulary must not be empty")
    probability = 1.0 / len(words)
    return QueryWordDistribution({word: probability for word in words})


def occurrence_distribution(word_counts: Mapping[str, int]) -> QueryWordDistribution:
    """Prior proportional to word occurrences across the corpus."""
    total = sum(word_counts.values())
    if total <= 0:
        raise ValueError("word_counts must contain at least one occurrence")
    return QueryWordDistribution(
        {word: count / total for word, count in word_counts.items() if count > 0}
    )
