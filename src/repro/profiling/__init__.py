"""Corpus profiling.

Airphant's Builder makes a single pass over the parsed documents to collect
the statistics the IoU Sketch optimizer needs: the number of documents, the
vocabulary, the number of distinct words per document (|Wᵢ|), document
frequencies, and the corpus-dependent concentration coefficient σ_X reported
in the paper's Table II.
"""

from repro.profiling.distributions import (
    QueryWordDistribution,
    occurrence_distribution,
    uniform_distribution,
)
from repro.profiling.profiler import CorpusProfile, profile_documents

__all__ = [
    "CorpusProfile",
    "QueryWordDistribution",
    "occurrence_distribution",
    "profile_documents",
    "uniform_distribution",
]
