"""Single-pass corpus profiler.

Produces the :class:`CorpusProfile` consumed by the IoU Sketch optimizer and
reported (for the paper's corpora) in Table II.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.parsing.documents import Document
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.profiling.distributions import QueryWordDistribution, uniform_distribution


@dataclass
class CorpusProfile:
    """Statistics of a parsed corpus.

    Attributes
    ----------
    num_documents:
        Number of documents n.
    num_terms:
        Number of distinct words |W| across the corpus.
    num_words:
        Total number of word occurrences across all documents.
    distinct_words_per_document:
        |Wᵢ| for every document i, in document order.
    document_frequencies:
        For each word, the number of documents containing it.
    word_counts:
        For each word, its total number of occurrences.
    """

    num_documents: int
    num_terms: int
    num_words: int
    distinct_words_per_document: list[int]
    document_frequencies: dict[str, int] = field(repr=False)
    word_counts: dict[str, int] = field(repr=False)

    @property
    def vocabulary(self) -> set[str]:
        """The set of distinct words in the corpus."""
        return set(self.document_frequencies)

    @property
    def max_distinct_words(self) -> int:
        """max_i |Wᵢ|; drives the fast-region bound in the optimizer."""
        if not self.distinct_words_per_document:
            return 0
        return max(self.distinct_words_per_document)

    @property
    def mean_distinct_words(self) -> float:
        """Average |Wᵢ| across documents."""
        if not self.distinct_words_per_document:
            return 0.0
        return sum(self.distinct_words_per_document) / len(self.distinct_words_per_document)

    def uniform_query_distribution(self) -> QueryWordDistribution:
        """The paper's default query prior: uniform over the vocabulary."""
        return uniform_distribution(self.vocabulary)

    def most_common_words(self, count: int) -> list[str]:
        """The ``count`` words appearing in the most documents.

        Ties are broken alphabetically so the selection is deterministic.
        """
        if count <= 0:
            return []
        ranked = sorted(
            self.document_frequencies.items(), key=lambda item: (-item[1], item[0])
        )
        return [word for word, _ in ranked[:count]]

    def irrelevance_coefficients(
        self, distribution: QueryWordDistribution | None = None
    ) -> list[float]:
        """c_i = Σ_{w ∉ Wᵢ} p_w for every document, from document frequencies.

        Computing the exact per-document sum requires the per-document word
        sets; the profiler keeps only |Wᵢ| to stay single-pass and O(corpus)
        in memory, so for a *uniform* prior the exact value
        c_i = (|W| − |Wᵢ|)/|W| is returned.  For non-uniform priors this
        method approximates c_i by scaling the total prior mass by the same
        fraction, which is exact when prior mass is spread evenly over the
        document's words.
        """
        if self.num_terms == 0:
            return [0.0 for _ in self.distinct_words_per_document]
        if distribution is None:
            return [
                (self.num_terms - size) / self.num_terms
                for size in self.distinct_words_per_document
            ]
        total_mass = distribution.total_mass
        return [
            total_mass * (self.num_terms - size) / self.num_terms
            for size in self.distinct_words_per_document
        ]

    def sigma_x(self, distribution: QueryWordDistribution | None = None) -> float:
        """Corpus-dependent deviation coefficient σ_X of Table II.

        σ_X² = Σᵢ Σ_{w ∉ Wᵢ} p_w², the variance proxy in the Hoeffding bound
        (Equation 5).  Under the default uniform prior this simplifies to
        Σᵢ (|W| − |Wᵢ|) / |W|².
        """
        if self.num_terms == 0:
            return 0.0
        if distribution is None:
            variance = sum(
                (self.num_terms - size) / (self.num_terms**2)
                for size in self.distinct_words_per_document
            )
            return math.sqrt(variance)
        per_word_square = distribution.sum_squares() / max(self.num_terms, 1)
        variance = sum(
            (self.num_terms - size) * per_word_square
            for size in self.distinct_words_per_document
        )
        return math.sqrt(variance)


def profile_documents(
    documents: Iterable[Document] | Sequence[Document],
    tokenizer: Tokenizer | None = None,
) -> CorpusProfile:
    """Profile a parsed corpus in a single pass.

    Parameters
    ----------
    documents:
        Parsed documents (any iterable; consumed once).
    tokenizer:
        Document-word parser; defaults to the whitespace analyzer used in the
        paper's benchmarks.
    """
    if tokenizer is None:
        tokenizer = WhitespaceAnalyzer()

    document_frequencies: Counter[str] = Counter()
    word_counts: Counter[str] = Counter()
    distinct_words_per_document: list[int] = []
    num_documents = 0
    num_words = 0

    for document in documents:
        tokens = tokenizer.tokenize(document.text)
        distinct = set(tokens)
        num_documents += 1
        num_words += len(tokens)
        distinct_words_per_document.append(len(distinct))
        document_frequencies.update(distinct)
        word_counts.update(tokens)

    return CorpusProfile(
        num_documents=num_documents,
        num_terms=len(document_frequencies),
        num_words=num_words,
        distinct_words_per_document=distinct_words_per_document,
        document_frequencies=dict(document_frequencies),
        word_counts=dict(word_counts),
    )
