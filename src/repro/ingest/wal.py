"""Write-ahead log for live ingestion, laid out for object storage.

Cloud object stores have no append operation, so the WAL is *segmented*:
every accepted ``append`` batch becomes one immutable segment blob under
``<index>/ingest/seg-NNNNNNNN.log``, committed before the batch is
acknowledged.  Two deliberate choices make the design cheap:

* **A segment is plain line-delimited corpus bytes** — exactly the layout
  :class:`~repro.parsing.corpus.LineDelimitedCorpusParser` reads and the
  Builder indexes.  The segment therefore *is* the documents' permanent
  storage: postings created at flush time point straight into it with
  ``(blob, offset, length)`` ranges, and compaction re-reads documents from
  it like from any corpus blob.  Nothing is ever copied out of the WAL.
* **One manifest blob is the commit point** — ``<index>/ingest/ingest.json``
  lists the segments not yet folded into a delta index (``active``) plus a
  monotonic segment counter.  Replay after a crash reads the manifest and
  re-parses the active segments; flushing rewrites the manifest with the
  flushed segments removed.  A flush that crashes *between* writing the
  delta and trimming the manifest replays those documents a second time —
  harmless, because postings are ``(blob, offset, length)`` and the combined
  view de-duplicates by exact reference.

Segment numbering never resets (the counter outlives flushes), so a replayed
or retried writer can never overwrite a segment readers may hold.

Deletes and updates ride the same machinery as **tombstone records**: a
``DELETE`` writes a ``tomb-NNNNNNNN.json`` blob (numbered from the same
monotonic counter as document segments) listing the condemned
``(blob, offset, length)`` references, then commits it into the manifest's
``tombstone_segments`` list.  An ``UPDATE`` is a document segment plus a
tombstone for the old reference committed in **one** manifest write, so
readers never observe the delete without the replacement (or vice versa).
Tombstones outlive flushes — they must keep shadowing copies of the document
in delta and base indexes — and are retired (and their blobs deleted) only
when a compaction physically drops the condemned documents.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document, Posting
from repro.storage.base import ObjectStore

#: Directory (blob-prefix) fragment holding an index's WAL state.
INGEST_DIR = "ingest"

#: Manifest blob name within the ingest directory.
INGEST_MANIFEST = "ingest.json"


def ingest_manifest_blob(index_name: str) -> str:
    """Blob holding ``index_name``'s ingest manifest."""
    return f"{index_name}/{INGEST_DIR}/{INGEST_MANIFEST}"


def segment_blob(index_name: str, sequence: int) -> str:
    """Blob holding WAL segment number ``sequence`` of ``index_name``."""
    return f"{index_name}/{INGEST_DIR}/seg-{sequence:08d}.log"


def tombstone_blob(index_name: str, sequence: int) -> str:
    """Blob holding tombstone record number ``sequence`` of ``index_name``.

    Tombstones draw from the same monotonic counter as document segments, so
    a sequence number is never reused across the two record kinds either.
    """
    return f"{index_name}/{INGEST_DIR}/tomb-{sequence:08d}.json"


@dataclass(frozen=True)
class IngestManifest:
    """Durable ingest state of one index: unflushed segments + counter.

    ``tombstone_segments`` lists the tombstone record blobs whose deletes
    have not yet been applied physically by a compaction; manifests written
    before deletes existed load with the empty default.
    """

    next_segment: int = 0
    active_segments: tuple[str, ...] = ()
    tombstone_segments: tuple[str, ...] = ()

    def to_bytes(self) -> bytes:
        """Serialize for the manifest blob."""
        payload = {
            "version": 1,
            "next_segment": self.next_segment,
            "active_segments": list(self.active_segments),
            "tombstone_segments": list(self.tombstone_segments),
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IngestManifest":
        """Parse a manifest blob."""
        payload = json.loads(data.decode("utf-8"))
        return cls(
            next_segment=int(payload["next_segment"]),
            active_segments=tuple(payload["active_segments"]),
            tombstone_segments=tuple(payload.get("tombstone_segments", ())),
        )


def encode_segment(texts: list[str]) -> bytes:
    """Encode one batch of document texts as a line-delimited segment.

    Raises ``ValueError`` on documents the line-delimited layout cannot
    represent (embedded newlines would silently split into several
    documents; empty lines are skipped by the corpus parser, so an empty
    document would vanish on replay).
    """
    if not texts:
        raise ValueError("a WAL segment needs at least one document")
    for position, text in enumerate(texts):
        if not isinstance(text, str):
            raise ValueError(f"document {position} is not a string")
        if "\n" in text:
            raise ValueError(
                f"document {position} contains a newline; one document per "
                "line is the WAL segment (and corpus) format"
            )
        if not text.strip():
            raise ValueError(f"document {position} is empty (or whitespace only)")
    return ("\n".join(texts) + "\n").encode("utf-8")


#: Format version written into tombstone record blobs.
TOMBSTONE_FORMAT_V1 = 1


def encode_tombstones(refs: Sequence[Posting]) -> bytes:
    """Encode one batch of condemned document references as a tombstone record.

    Raises ``ValueError`` on an empty batch — an empty tombstone would be a
    durable no-op that still costs a manifest entry forever.
    """
    refs = list(refs)
    if not refs:
        raise ValueError("a tombstone record needs at least one document reference")
    for position, ref in enumerate(refs):
        if not isinstance(ref, Posting):
            raise ValueError(f"tombstone entry {position} is not a document reference")
        if not ref.blob or ref.offset < 0 or ref.length <= 0:
            raise ValueError(
                f"tombstone entry {position} is not a valid document reference: "
                f"({ref.blob!r}, {ref.offset}, {ref.length})"
            )
    payload = {
        "version": TOMBSTONE_FORMAT_V1,
        "refs": [[ref.blob, ref.offset, ref.length] for ref in refs],
    }
    return json.dumps(payload).encode("utf-8")


def parse_tombstones(data: bytes) -> list[Posting]:
    """Decode a tombstone record blob back into document references."""
    payload = json.loads(data.decode("utf-8"))
    version = payload.get("version")
    if version != TOMBSTONE_FORMAT_V1:
        raise ValueError(f"unknown tombstone record version {version!r}")
    return [
        Posting(blob=str(blob), offset=int(offset), length=int(length))
        for blob, offset, length in payload["refs"]
    ]


def parse_segment(blob_name: str, data: bytes) -> list[Document]:
    """Documents of one segment, with byte-exact postings into the blob.

    Uses the standard line-delimited corpus parser, so offsets agree with
    what a flush-time delta build (or a later compaction) computes for the
    very same blob.
    """
    return list(LineDelimitedCorpusParser().parse_blob(blob_name, data))


class WriteAheadLog:
    """The segmented WAL of one index on one object store.

    Not itself thread-safe: :class:`~repro.ingest.live.LiveIndex` serializes
    all WAL mutations under its write lock (the manifest is a single-writer
    blob, like every other manifest in the repository).
    """

    def __init__(self, store: ObjectStore, index_name: str) -> None:
        self._store = store
        self._index_name = index_name
        self._manifest: IngestManifest | None = None
        #: In-process floor on segment numbers: reservations whose PUT is
        #: still in flight (not yet in the manifest) must not be reissued.
        self._reserved = 0

    @property
    def index_name(self) -> str:
        """The index this WAL belongs to."""
        return self._index_name

    @property
    def manifest_blob(self) -> str:
        """Blob holding this WAL's manifest."""
        return ingest_manifest_blob(self._index_name)

    def manifest(self, refresh: bool = False) -> IngestManifest:
        """The current manifest (cached after the first read)."""
        if self._manifest is None or refresh:
            if self._store.exists(self.manifest_blob):
                self._manifest = IngestManifest.from_bytes(
                    self._store.get(self.manifest_blob)
                )
            else:
                self._manifest = IngestManifest()
        return self._manifest

    def _commit(self, manifest: IngestManifest) -> None:
        self._store.put(self.manifest_blob, manifest.to_bytes())
        self._manifest = manifest

    # -- writing -------------------------------------------------------------------

    def reserve_segment(self) -> tuple[int, str]:
        """Allocate the next segment number and blob name (no I/O).

        The caller serializes reservations (LiveIndex's write lock); the
        in-process floor keeps numbers monotonic even while an earlier
        reservation's PUT is still in flight.  A reservation whose PUT
        crashes before :meth:`commit_segment` leaves at most an
        *unreferenced* blob that a later process may overwrite — it was
        never acknowledged, so nobody can hold a reference to it.
        """
        sequence = max(self.manifest().next_segment, self._reserved)
        self._reserved = sequence + 1
        return sequence, segment_blob(self._index_name, sequence)

    def commit_segment(self, sequence: int, blob: str) -> None:
        """Reference an already-written segment blob from the manifest.

        The commit point of an append: the segment bytes are durable before
        this runs, so the manifest never points at missing data.
        """
        manifest = self.manifest()
        self._commit(
            IngestManifest(
                next_segment=max(manifest.next_segment, sequence + 1),
                active_segments=manifest.active_segments + (blob,),
                tombstone_segments=manifest.tombstone_segments,
            )
        )

    def reserve_tombstone(self) -> tuple[int, str]:
        """Allocate the next tombstone record number and blob name (no I/O).

        Same contract as :meth:`reserve_segment` — one shared monotonic
        counter, caller-serialized, crash-before-commit leaves at most an
        unreferenced blob.
        """
        sequence = max(self.manifest().next_segment, self._reserved)
        self._reserved = sequence + 1
        return sequence, tombstone_blob(self._index_name, sequence)

    def commit_tombstone(self, sequence: int, blob: str) -> None:
        """Reference an already-written tombstone record from the manifest.

        The commit point of a DELETE: until this manifest PUT lands, the
        delete was never acknowledged and a crash simply strands the record
        blob.
        """
        manifest = self.manifest()
        self._commit(
            IngestManifest(
                next_segment=max(manifest.next_segment, sequence + 1),
                active_segments=manifest.active_segments,
                tombstone_segments=manifest.tombstone_segments + (blob,),
            )
        )

    def commit_update(
        self,
        segment_sequence: int,
        segment: str,
        tombstone_sequence: int,
        tombstone: str,
    ) -> IngestManifest:
        """Commit an UPDATE: new document segment + old-reference tombstone.

        One manifest PUT references both blobs, so the operation is atomic:
        a crash before it shows the old document untouched, after it the
        replacement — never a window with both or neither visible.
        """
        manifest = self.manifest()
        updated = IngestManifest(
            next_segment=max(
                manifest.next_segment, segment_sequence + 1, tombstone_sequence + 1
            ),
            active_segments=manifest.active_segments + (segment,),
            tombstone_segments=manifest.tombstone_segments + (tombstone,),
        )
        self._commit(updated)
        return updated

    def append_tombstones(self, refs: Sequence[Posting]) -> str:
        """Persist one batch of deletes as a tombstone record; returns its blob.

        Convenience wrapper over reserve → PUT → commit for single-threaded
        callers; LiveIndex drives the three steps itself so the record PUT
        happens outside its write lock.
        """
        data = encode_tombstones(refs)
        sequence, blob = self.reserve_tombstone()
        self._store.put(blob, data)
        self.commit_tombstone(sequence, blob)
        return blob

    def append(self, texts: list[str]) -> tuple[str, list[Document]]:
        """Persist one batch as a new segment; returns ``(blob, documents)``.

        Convenience wrapper over reserve → PUT → commit for single-threaded
        callers (tests, tools); LiveIndex drives the three steps itself so
        the segment PUT happens outside its write lock.
        """
        data = encode_segment(texts)
        sequence, blob = self.reserve_segment()
        self._store.put(blob, data)
        self.commit_segment(sequence, blob)
        return blob, parse_segment(blob, data)

    def retire(self, segments: tuple[str, ...]) -> IngestManifest:
        """Drop flushed ``segments`` from the active list (the flush commit).

        The segment blobs themselves are **not** deleted: they hold the
        document bytes the freshly built delta's postings point into.
        """
        manifest = self.manifest()
        remaining = tuple(
            blob for blob in manifest.active_segments if blob not in set(segments)
        )
        committed = IngestManifest(
            next_segment=manifest.next_segment,
            active_segments=remaining,
            tombstone_segments=manifest.tombstone_segments,
        )
        self._commit(committed)
        return committed

    def retire_tombstones(self, tombstones: Sequence[str]) -> IngestManifest:
        """Drop applied ``tombstones`` from the manifest (the compaction commit).

        Only valid once a compaction has physically dropped the condemned
        documents from the persisted indexes.  Unlike document segments the
        record blobs hold no document bytes, so they are deleted afterwards
        (best-effort: an unreferenced leftover is harmless).
        """
        manifest = self.manifest()
        dropped = set(tombstones)
        committed = IngestManifest(
            next_segment=manifest.next_segment,
            active_segments=manifest.active_segments,
            tombstone_segments=tuple(
                blob for blob in manifest.tombstone_segments if blob not in dropped
            ),
        )
        self._commit(committed)
        for blob in dropped:
            try:
                self._store.delete(blob)
            except Exception:  # noqa: BLE001 - unreferenced blob, cleanup only
                pass
        return committed

    def restore(self, tombstones: Sequence[Posting] = ()) -> IngestManifest:
        """Reset the WAL to a snapshot's write state (the restore commit).

        Active document segments are dropped (their blobs stay — persisted
        indexes reference document bytes inside them) and the pending-delete
        set is replaced by ``tombstones``, written as one fresh record.  The
        segment counter is preserved so post-restore writers never reuse a
        blob name from the abandoned timeline.
        """
        manifest = self.manifest(refresh=True)
        next_segment = max(manifest.next_segment, self._reserved)
        tombstone_segments: tuple[str, ...] = ()
        if tombstones:
            blob = tombstone_blob(self._index_name, next_segment)
            self._store.put(blob, encode_tombstones(tombstones))
            tombstone_segments = (blob,)
            next_segment += 1
        committed = IngestManifest(
            next_segment=next_segment,
            active_segments=(),
            tombstone_segments=tombstone_segments,
        )
        self._commit(committed)
        self._reserved = next_segment
        return committed

    # -- recovery ------------------------------------------------------------------

    def replay(self) -> list[Document]:
        """Documents of every active (unflushed) segment, in append order."""
        documents: list[Document] = []
        for blob in self.manifest(refresh=True).active_segments:
            documents.extend(parse_segment(blob, self._store.get(blob)))
        return documents

    def load_tombstones(self, refresh: bool = False) -> dict[str, tuple[Posting, ...]]:
        """Pending deletes, per tombstone record blob (crash recovery).

        Returns ``{record_blob: condemned_refs}`` for every record the
        manifest still references — the in-memory shadow set a reopened
        :class:`~repro.ingest.live.LiveIndex` filters queries with until the
        next compaction applies the deletes physically.
        """
        return {
            blob: tuple(parse_tombstones(self._store.get(blob)))
            for blob in self.manifest(refresh=refresh).tombstone_segments
        }

    def destroy(self) -> None:
        """Delete the manifest and every segment blob (full index rebuild).

        Only valid when the documents are no longer referenced — i.e. the
        whole index is being rebuilt from scratch over a new corpus.
        """
        for blob in self._store.list_blobs(prefix=f"{self._index_name}/{INGEST_DIR}/"):
            self._store.delete(blob)
        self._manifest = IngestManifest()
