"""Write-ahead log for live ingestion, laid out for object storage.

Cloud object stores have no append operation, so the WAL is *segmented*:
every accepted ``append`` batch becomes one immutable segment blob under
``<index>/ingest/seg-NNNNNNNN.log``, committed before the batch is
acknowledged.  Two deliberate choices make the design cheap:

* **A segment is plain line-delimited corpus bytes** — exactly the layout
  :class:`~repro.parsing.corpus.LineDelimitedCorpusParser` reads and the
  Builder indexes.  The segment therefore *is* the documents' permanent
  storage: postings created at flush time point straight into it with
  ``(blob, offset, length)`` ranges, and compaction re-reads documents from
  it like from any corpus blob.  Nothing is ever copied out of the WAL.
* **One manifest blob is the commit point** — ``<index>/ingest/ingest.json``
  lists the segments not yet folded into a delta index (``active``) plus a
  monotonic segment counter.  Replay after a crash reads the manifest and
  re-parses the active segments; flushing rewrites the manifest with the
  flushed segments removed.  A flush that crashes *between* writing the
  delta and trimming the manifest replays those documents a second time —
  harmless, because postings are ``(blob, offset, length)`` and the combined
  view de-duplicates by exact reference.

Segment numbering never resets (the counter outlives flushes), so a replayed
or retried writer can never overwrite a segment readers may hold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.parsing.corpus import LineDelimitedCorpusParser
from repro.parsing.documents import Document
from repro.storage.base import ObjectStore

#: Directory (blob-prefix) fragment holding an index's WAL state.
INGEST_DIR = "ingest"

#: Manifest blob name within the ingest directory.
INGEST_MANIFEST = "ingest.json"


def ingest_manifest_blob(index_name: str) -> str:
    """Blob holding ``index_name``'s ingest manifest."""
    return f"{index_name}/{INGEST_DIR}/{INGEST_MANIFEST}"


def segment_blob(index_name: str, sequence: int) -> str:
    """Blob holding WAL segment number ``sequence`` of ``index_name``."""
    return f"{index_name}/{INGEST_DIR}/seg-{sequence:08d}.log"


@dataclass(frozen=True)
class IngestManifest:
    """Durable ingest state of one index: unflushed segments + counter."""

    next_segment: int = 0
    active_segments: tuple[str, ...] = ()

    def to_bytes(self) -> bytes:
        """Serialize for the manifest blob."""
        payload = {
            "version": 1,
            "next_segment": self.next_segment,
            "active_segments": list(self.active_segments),
        }
        return json.dumps(payload).encode("utf-8")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IngestManifest":
        """Parse a manifest blob."""
        payload = json.loads(data.decode("utf-8"))
        return cls(
            next_segment=int(payload["next_segment"]),
            active_segments=tuple(payload["active_segments"]),
        )


def encode_segment(texts: list[str]) -> bytes:
    """Encode one batch of document texts as a line-delimited segment.

    Raises ``ValueError`` on documents the line-delimited layout cannot
    represent (embedded newlines would silently split into several
    documents; empty lines are skipped by the corpus parser, so an empty
    document would vanish on replay).
    """
    if not texts:
        raise ValueError("a WAL segment needs at least one document")
    for position, text in enumerate(texts):
        if not isinstance(text, str):
            raise ValueError(f"document {position} is not a string")
        if "\n" in text:
            raise ValueError(
                f"document {position} contains a newline; one document per "
                "line is the WAL segment (and corpus) format"
            )
        if not text.strip():
            raise ValueError(f"document {position} is empty (or whitespace only)")
    return ("\n".join(texts) + "\n").encode("utf-8")


def parse_segment(blob_name: str, data: bytes) -> list[Document]:
    """Documents of one segment, with byte-exact postings into the blob.

    Uses the standard line-delimited corpus parser, so offsets agree with
    what a flush-time delta build (or a later compaction) computes for the
    very same blob.
    """
    return list(LineDelimitedCorpusParser().parse_blob(blob_name, data))


class WriteAheadLog:
    """The segmented WAL of one index on one object store.

    Not itself thread-safe: :class:`~repro.ingest.live.LiveIndex` serializes
    all WAL mutations under its write lock (the manifest is a single-writer
    blob, like every other manifest in the repository).
    """

    def __init__(self, store: ObjectStore, index_name: str) -> None:
        self._store = store
        self._index_name = index_name
        self._manifest: IngestManifest | None = None
        #: In-process floor on segment numbers: reservations whose PUT is
        #: still in flight (not yet in the manifest) must not be reissued.
        self._reserved = 0

    @property
    def index_name(self) -> str:
        """The index this WAL belongs to."""
        return self._index_name

    @property
    def manifest_blob(self) -> str:
        """Blob holding this WAL's manifest."""
        return ingest_manifest_blob(self._index_name)

    def manifest(self, refresh: bool = False) -> IngestManifest:
        """The current manifest (cached after the first read)."""
        if self._manifest is None or refresh:
            if self._store.exists(self.manifest_blob):
                self._manifest = IngestManifest.from_bytes(
                    self._store.get(self.manifest_blob)
                )
            else:
                self._manifest = IngestManifest()
        return self._manifest

    def _commit(self, manifest: IngestManifest) -> None:
        self._store.put(self.manifest_blob, manifest.to_bytes())
        self._manifest = manifest

    # -- writing -------------------------------------------------------------------

    def reserve_segment(self) -> tuple[int, str]:
        """Allocate the next segment number and blob name (no I/O).

        The caller serializes reservations (LiveIndex's write lock); the
        in-process floor keeps numbers monotonic even while an earlier
        reservation's PUT is still in flight.  A reservation whose PUT
        crashes before :meth:`commit_segment` leaves at most an
        *unreferenced* blob that a later process may overwrite — it was
        never acknowledged, so nobody can hold a reference to it.
        """
        sequence = max(self.manifest().next_segment, self._reserved)
        self._reserved = sequence + 1
        return sequence, segment_blob(self._index_name, sequence)

    def commit_segment(self, sequence: int, blob: str) -> None:
        """Reference an already-written segment blob from the manifest.

        The commit point of an append: the segment bytes are durable before
        this runs, so the manifest never points at missing data.
        """
        manifest = self.manifest()
        self._commit(
            IngestManifest(
                next_segment=max(manifest.next_segment, sequence + 1),
                active_segments=manifest.active_segments + (blob,),
            )
        )

    def append(self, texts: list[str]) -> tuple[str, list[Document]]:
        """Persist one batch as a new segment; returns ``(blob, documents)``.

        Convenience wrapper over reserve → PUT → commit for single-threaded
        callers (tests, tools); LiveIndex drives the three steps itself so
        the segment PUT happens outside its write lock.
        """
        data = encode_segment(texts)
        sequence, blob = self.reserve_segment()
        self._store.put(blob, data)
        self.commit_segment(sequence, blob)
        return blob, parse_segment(blob, data)

    def retire(self, segments: tuple[str, ...]) -> IngestManifest:
        """Drop flushed ``segments`` from the active list (the flush commit).

        The segment blobs themselves are **not** deleted: they hold the
        document bytes the freshly built delta's postings point into.
        """
        manifest = self.manifest()
        remaining = tuple(
            blob for blob in manifest.active_segments if blob not in set(segments)
        )
        committed = IngestManifest(
            next_segment=manifest.next_segment, active_segments=remaining
        )
        self._commit(committed)
        return committed

    # -- recovery ------------------------------------------------------------------

    def replay(self) -> list[Document]:
        """Documents of every active (unflushed) segment, in append order."""
        documents: list[Document] = []
        for blob in self.manifest(refresh=True).active_segments:
            documents.extend(parse_segment(blob, self._store.get(blob)))
        return documents

    def destroy(self) -> None:
        """Delete the manifest and every segment blob (full index rebuild).

        Only valid when the documents are no longer referenced — i.e. the
        whole index is being rebuilt from scratch over a new corpus.
        """
        for blob in self._store.list_blobs(prefix=f"{self._index_name}/{INGEST_DIR}/"):
            self._store.delete(blob)
        self._manifest = IngestManifest()
