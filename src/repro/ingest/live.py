"""The live write path: one index's ingester, the combined view, the worker.

Lifecycle of an appended document (read-your-writes at every step):

1. ``append`` — the batch becomes a durable WAL segment, then lands in the
   *active* memtable.  Queries see it immediately through the combined view.
2. ``flush`` — the active memtable is atomically *sealed* (a fresh active
   one takes over for concurrent appends), its documents are built into an
   Airphant delta index with ``AppendOnlyIndexManager.append``, the catalog
   is invalidated so the next open includes the delta, and only then are the
   sealed memtable dropped and its WAL segments retired.  At no instant is a
   document invisible; at worst it is briefly visible twice, which the
   combined view's de-duplication by ``(blob, offset, length)`` absorbs.
3. ``compact`` — deltas fold into a fresh generational base via the
   manager's atomic manifest swap (see :mod:`repro.index.updates`).

:class:`LiveSearcher` is the combined memtable ∪ deltas ∪ base view: a
:class:`~repro.search.multi.MultiIndexSearcher` whose member list is computed
*per call*, so catalog invalidations (new delta, new generation) and memtable
swaps are picked up without any notification plumbing.

:class:`IngestCoordinator` owns every live index of a service plus one
background worker thread that applies the flush/compaction policies from
:class:`~repro.service.config.ServiceConfig`; ``close()`` stops the worker
and waits for an in-flight flush or compaction to drain.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.index.updates import AppendOnlyIndexManager
from repro.ingest.memtable import Memtable, MemtableSearcher
from repro.ingest.wal import WriteAheadLog, ingest_manifest_blob
from repro.observability import MetricsRegistry
from repro.parsing.documents import Document
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.multi import MultiIndexSearcher
from repro.storage.base import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.config import ServiceConfig

#: Histogram buckets for flush/compaction durations (seconds): builds run
#: longer than the default request-latency ladder.
_MAINTENANCE_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class LiveIndex:
    """The write path of one index: WAL, memtables, flush, compaction."""

    def __init__(
        self,
        store: ObjectStore,
        index_name: str,
        config: "ServiceConfig",
        metrics: MetricsRegistry,
        invalidate: Callable[[str], None],
    ) -> None:
        self._store = store
        self._index_name = index_name
        self._config = config
        self._invalidate = invalidate
        tokenizer = config.make_tokenizer()
        self._tokenizer_factory = config.make_tokenizer
        self._wal = WriteAheadLog(store, index_name)
        self._manager = AppendOnlyIndexManager(
            store, base_index=index_name, tokenizer=tokenizer
        )
        self._active = Memtable(tokenizer)
        self._sealed: list[Memtable] = []
        # _write_lock guards WAL commits and memtable swaps (short holds);
        # _maintenance_lock serializes flushes/compactions (long holds) so a
        # manual POST /flush and the background worker never interleave.
        self._write_lock = threading.RLock()
        self._maintenance_lock = threading.RLock()
        self._delta_count = len(self._manager.manifest().delta_indexes)
        self._ratio_dirty = self._delta_count > 0

        self._documents_metric = metrics.counter(
            "airphant_ingest_documents_total",
            "Documents accepted by the live write path",
            label_names=("index",),
        )
        self._batches_metric = metrics.counter(
            "airphant_ingest_batches_total",
            "Append batches accepted by the live write path",
            label_names=("index",),
        )
        self._wal_segments_metric = metrics.counter(
            "airphant_wal_segments_total",
            "WAL segments written",
            label_names=("index",),
        )
        self._wal_bytes_metric = metrics.counter(
            "airphant_wal_bytes_total",
            "Bytes written to WAL segments",
            label_names=("index",),
        )
        self._replayed_metric = metrics.counter(
            "airphant_wal_replayed_documents_total",
            "Documents recovered from WAL segments at open",
            label_names=("index",),
        )
        self._flushes_metric = metrics.counter(
            "airphant_ingest_flushes_total",
            "Memtable flushes completed (one delta index each)",
            label_names=("index",),
        )
        self._compactions_metric = metrics.counter(
            "airphant_ingest_compactions_total",
            "Compactions completed (deltas folded into a new base generation)",
            label_names=("index",),
        )
        self._flush_seconds_metric = metrics.histogram(
            "airphant_ingest_flush_seconds",
            "Wall-clock duration of memtable flushes",
            buckets=_MAINTENANCE_BUCKETS,
        )
        self._compact_seconds_metric = metrics.histogram(
            "airphant_ingest_compact_seconds",
            "Wall-clock duration of compactions",
            buckets=_MAINTENANCE_BUCKETS,
        )
        self._memtable_docs_gauge = metrics.gauge(
            "airphant_memtable_documents",
            "Unflushed documents currently searchable from memtables",
            label_names=("index",),
        )
        self._memtable_bytes_gauge = metrics.gauge(
            "airphant_memtable_bytes",
            "Raw bytes of unflushed documents held by memtables",
            label_names=("index",),
        )

    # -- inspection ---------------------------------------------------------------

    @property
    def index_name(self) -> str:
        """The logical index this ingester writes into."""
        return self._index_name

    @property
    def wal(self) -> WriteAheadLog:
        """The segmented write-ahead log."""
        return self._wal

    @property
    def manager(self) -> AppendOnlyIndexManager:
        """The append-only manager deltas and compactions go through."""
        return self._manager

    @property
    def delta_count(self) -> int:
        """Delta indexes currently stacked on the base (compaction input)."""
        return self._delta_count

    def memtable_documents(self) -> int:
        """Searchable-but-unflushed documents (active + sealed memtables)."""
        with self._write_lock:
            return sum(len(table) for table in (*self._sealed, self._active))

    def memtable_bytes(self) -> int:
        """Raw bytes of searchable-but-unflushed documents."""
        with self._write_lock:
            return sum(
                table.approximate_bytes for table in (*self._sealed, self._active)
            )

    def memtable_searchers(self) -> list[MemtableSearcher]:
        """One searcher per live memtable (sealed first, active last)."""
        with self._write_lock:
            tables = [*self._sealed, self._active]
        return [
            MemtableSearcher(table, f"{self._index_name}/memtable")
            for table in tables
            if len(table) > 0
        ]

    def summary(self) -> dict[str, Any]:
        """Compact state block for ``/healthz``."""
        return {
            "memtable_documents": self.memtable_documents(),
            "memtable_bytes": self.memtable_bytes(),
            "wal_segments_active": len(self._wal.manifest().active_segments),
            "delta_indexes": self._delta_count,
        }

    def _update_gauges(self) -> None:
        self._memtable_docs_gauge.set(self.memtable_documents(), index=self._index_name)
        self._memtable_bytes_gauge.set(self.memtable_bytes(), index=self._index_name)

    def clear_gauges(self) -> None:
        """Drop this index's occupancy series (the index is being discarded)."""
        self._memtable_docs_gauge.remove(index=self._index_name)
        self._memtable_bytes_gauge.remove(index=self._index_name)

    # -- recovery -----------------------------------------------------------------

    def replay(self) -> int:
        """Rebuild the memtable from unflushed WAL segments (crash recovery)."""
        documents = self._wal.replay()
        if not documents:
            return 0
        with self._write_lock:
            added = self._active.add(documents)
        self._replayed_metric.inc(added, index=self._index_name)
        self._update_gauges()
        return added

    # -- the write path -----------------------------------------------------------

    def append(self, texts: Sequence[str]) -> dict[str, Any]:
        """Durably accept one batch of documents; searchable on return.

        Raises ``ValueError`` for documents the WAL segment format cannot
        hold (empty, or containing newlines).
        """
        from repro.ingest.wal import encode_segment, parse_segment

        texts = list(texts)
        data = encode_segment(texts)  # validation before any I/O or locking
        with self._write_lock:
            sequence, blob = self._wal.reserve_segment()
        # The heavyweight network write happens OUTSIDE the write lock, so
        # concurrent queries (which briefly take the lock to snapshot the
        # memtables) never stall behind a slow or retried segment upload.
        self._store.put(blob, data)
        documents = parse_segment(blob, data)
        with self._write_lock:
            self._wal.commit_segment(sequence, blob)
            self._active.add(documents)
        nbytes = sum(document.length for document in documents)
        self._documents_metric.inc(len(documents), index=self._index_name)
        self._batches_metric.inc(index=self._index_name)
        self._wal_segments_metric.inc(index=self._index_name)
        self._wal_bytes_metric.inc(nbytes, index=self._index_name)
        self._update_gauges()
        return {
            "index": self._index_name,
            "appended": len(documents),
            "wal_segment": blob,
            "memtable_documents": self.memtable_documents(),
            "refs": [
                {"blob": doc.blob, "offset": doc.offset, "length": doc.length}
                for doc in documents
            ],
        }

    def should_flush(self) -> bool:
        """Whether the flush policy (doc count / byte budget) has triggered."""
        with self._write_lock:
            return (
                len(self._active) >= self._config.ingest_flush_docs
                or self._active.approximate_bytes >= self._config.ingest_flush_bytes
            )

    def flush(self) -> dict[str, Any] | None:
        """Fold the active memtable into a fresh delta index.

        Returns ``None`` when there was nothing to flush.  Concurrency: the
        sealed memtable stays searchable while the delta builds, and the
        catalog is invalidated *before* it is dropped, so readers never lose
        sight of a document (they may briefly see it from both places; the
        combined view de-duplicates).
        """
        started = time.perf_counter()
        with self._maintenance_lock:
            with self._write_lock:
                if len(self._active) == 0:
                    return None
                sealed = self._active
                segments = self._wal.manifest().active_segments
                self._active = Memtable(self._tokenizer_factory())
                self._sealed.append(sealed)
            try:
                built = self._manager.append(sealed.documents(), corpus_name="ingest")
            except BaseException:
                # Undo the seal: the documents return to the (new) active
                # memtable — still searchable, still WAL-covered — so the
                # next flush retries them.
                with self._write_lock:
                    self._sealed.remove(sealed)
                    self._active.add(sealed.documents())
                raise
            self._delta_count += 1
            self._ratio_dirty = True
            # New delta first, then drop the sealed memtable: queries in the
            # gap see the documents twice (de-duplicated), never zero times.
            self._invalidate(self._index_name)
            with self._write_lock:
                self._sealed.remove(sealed)
                self._wal.retire(segments)
        elapsed = time.perf_counter() - started
        self._flushes_metric.inc(index=self._index_name)
        self._flush_seconds_metric.observe(elapsed)
        self._update_gauges()
        return {
            "index": self._index_name,
            "flushed": len(sealed),
            "delta": built.index_name,
            "seconds": elapsed,
        }

    def should_compact(self) -> bool:
        """Whether the compaction policy has triggered.

        Two triggers, both disabled at 0: a maximum stacked-delta count, and
        a delta-bytes / base-bytes ratio.  The ratio needs storage listings,
        so it is only recomputed after a flush changed the delta stack.
        """
        if self._delta_count == 0:
            return False
        max_deltas = self._config.ingest_compact_deltas
        if max_deltas > 0 and self._delta_count >= max_deltas:
            return True
        ratio = self._config.ingest_compact_ratio
        if ratio > 0 and self._ratio_dirty:
            manifest = self._manager.manifest()
            base_bytes = self._base_bytes(manifest.active_base)
            delta_bytes = sum(
                self._store.total_bytes(prefix=f"{delta}/")
                for delta in manifest.delta_indexes
            )
            self._ratio_dirty = False
            if base_bytes > 0 and delta_bytes / base_bytes >= ratio:
                return True
        return False

    def _base_bytes(self, active_base: str) -> int:
        """Bytes of the base build's own blobs (the ratio denominator).

        A generational base owns its whole ``gen-NNNNNNNN/`` prefix, but the
        legacy in-place base shares its prefix with deltas, WAL segments,
        and manifests — summing the shared prefix would fold the deltas into
        the denominator and structurally understate the ratio (a configured
        ratio >= 1.0 could then never fire).
        """
        if active_base != self._index_name:
            return self._store.total_bytes(prefix=f"{active_base}/")
        from repro.index.compaction import HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX
        from repro.index.sharding import SHARD_MARKER

        nbytes = self._store.total_bytes(prefix=f"{active_base}{SHARD_MARKER}")
        for suffix in (HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX):
            blob = f"{active_base}/{suffix}"
            if self._store.exists(blob):
                nbytes += self._store.size(blob)
        return nbytes

    def compact(self) -> dict[str, Any] | None:
        """Flush, then fold every delta into a new base generation.

        Returns ``None`` when there is nothing to fold (no memtable
        documents and no deltas).
        """
        started = time.perf_counter()
        with self._maintenance_lock:
            self.flush()
            manifest = self._manager.manifest()
            if not manifest.delta_indexes:
                return None
            folded = len(manifest.delta_indexes)
            built = self._manager.compact(corpus_name="compacted")
            self._delta_count = 0
            self._ratio_dirty = False
            self._invalidate(self._index_name)
        elapsed = time.perf_counter() - started
        self._compactions_metric.inc(index=self._index_name)
        self._compact_seconds_metric.observe(elapsed)
        manager_manifest = self._manager.manifest()
        return {
            "index": self._index_name,
            "deltas_folded": folded,
            "generation": manager_manifest.generation,
            "base": built.index_name,
            "seconds": elapsed,
        }


class LiveSearcher(MultiIndexSearcher):
    """Combined memtable ∪ deltas ∪ base view over one index.

    A :class:`~repro.search.multi.MultiIndexSearcher` whose members are
    resolved *per call* from a provider: the catalog's (cached) searcher for
    the persisted members plus one exact searcher per live memtable.  Every
    inherited query path — keyword, Boolean (hence regex filtering), and
    ``lookup_postings`` — therefore sees freshly appended documents with no
    further wiring, and picks up flush/compaction invalidations on its next
    call.  ``close`` is a no-op: the catalog owns the persisted members'
    lifecycles, the memtables own nothing closable.
    """

    def __init__(
        self, members: Callable[[], list[Any]], tokenizer: Tokenizer | None = None
    ) -> None:
        # Deliberately no super().__init__: members are computed per call.
        self._provider = members
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self.init_latency_ms = 0.0

    @property
    def _searchers(self) -> list[Any]:  # type: ignore[override]
        return self._provider()

    def initialize(self) -> float:
        """Members are initialized by their owners; nothing to do."""
        return 0.0

    def close(self) -> None:
        """No-op: the catalog and the live index own the member lifecycles."""


class IngestCoordinator:
    """Registry of live indexes plus the background flush/compaction worker.

    Created by :class:`~repro.service.facade.AirphantService`; one worker
    thread per service, started lazily with the first live index.  A live
    index exists for ``name`` once documents were appended this process, or
    once a query found unflushed WAL segments from a previous process (the
    crash-recovery replay).
    """

    def __init__(
        self,
        store: ObjectStore,
        config: "ServiceConfig",
        metrics: MetricsRegistry,
        invalidate: Callable[[str], None],
    ) -> None:
        self._store = store
        self._config = config
        self._metrics = metrics
        self._invalidate = invalidate
        self._lives: dict[str, LiveIndex] = {}
        #: Names already probed for leftover WAL state (one probe per name).
        self._probed: set[str] = set()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self._errors_metric = metrics.counter(
            "airphant_ingest_errors_total",
            "Background ingest-maintenance failures, by stage",
            label_names=("stage",),
        )

    # -- registry -----------------------------------------------------------------

    def live(self, name: str, create: bool = False) -> LiveIndex | None:
        """The live index for ``name``, or ``None`` if it has no write state.

        With ``create=True`` (the append path) a missing live index is
        created.  Either way, the first touch of a name probes the store
        once for unflushed WAL segments and replays them — this is the
        crash-recovery path, and it also serves reopened processes.
        """
        with self._lock:
            existing = self._lives.get(name)
            if existing is not None:
                return existing
            needs_replay = False
            if name not in self._probed:
                # Mark probed only after the probe (and replay below)
                # succeed: a transient store failure here must leave the
                # leftover-WAL check pending, not silently skipped forever.
                needs_replay = self._store.exists(ingest_manifest_blob(name))
            if not create and not needs_replay:
                self._probed.add(name)
                return None
            live = LiveIndex(
                self._store, name, self._config, self._metrics, self._invalidate
            )
            if needs_replay:
                live.replay()
            self._probed.add(name)
            if not create and live.memtable_documents() == 0:
                # The WAL manifest exists but everything was flushed: no
                # write state to serve; queries stay on the persisted view.
                return None
            self._lives[name] = live
            self._ensure_worker()
            return live

    def members(self, name: str) -> list[MemtableSearcher]:
        """Memtable searchers to splice into ``name``'s combined view."""
        live = self.live(name)
        return live.memtable_searchers() if live is not None else []

    def discard(self, name: str, destroy_wal: bool = False) -> None:
        """Forget ``name``'s live state (full rebuild path).

        ``destroy_wal=True`` also deletes its WAL segments — only valid when
        the whole index is rebuilt from scratch, making the old documents
        (and hence the segment blobs holding their bytes) garbage.
        """
        with self._lock:
            live = self._lives.pop(name, None)
            if live is not None:
                # A rebuilt index must not keep reporting phantom memtable
                # occupancy from its discarded predecessor.
                live.clear_gauges()
            self._probed.discard(name)
            if destroy_wal:
                WriteAheadLog(self._store, name).destroy()

    def lives(self) -> list[LiveIndex]:
        """Every currently tracked live index."""
        with self._lock:
            return list(self._lives.values())

    def summary(self) -> dict[str, Any]:
        """Aggregate ingest block for ``/healthz``."""
        lives = self.lives()
        return {
            "live_indexes": len(lives),
            "memtable_documents": sum(live.memtable_documents() for live in lives),
            "wal_segments_active": sum(
                len(live.wal.manifest().active_segments) for live in lives
            ),
            "delta_indexes": sum(live.delta_count for live in lives),
            "worker_running": self._worker is not None and self._worker.is_alive(),
        }

    # -- the background worker ----------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._config.ingest_interval_s <= 0:
            return  # background maintenance disabled; manual flush/compact only
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name="airphant-ingest", daemon=True
        )
        self._worker.start()

    def _run(self) -> None:
        stop = self._stop
        while not stop.wait(self._config.ingest_interval_s):
            self.run_maintenance()

    def run_maintenance(self) -> dict[str, int]:
        """One policy pass over every live index (the worker's loop body).

        Public so tests (and ``ingest_interval_s=0`` deployments) can drive
        maintenance deterministically without a thread.
        """
        flushed = compacted = errors = 0
        for live in self.lives():
            try:
                if live.should_flush() and live.flush() is not None:
                    flushed += 1
                if live.should_compact() and live.compact() is not None:
                    compacted += 1
            except Exception:
                # The worker must survive transient storage failures: count
                # them and retry on the next tick (appends stay durable in
                # the WAL regardless).
                errors += 1
                self._errors_metric.inc(stage="maintenance")
        return {"flushed": flushed, "compacted": compacted, "errors": errors}

    def close(self) -> None:
        """Stop the worker and wait for an in-flight flush/compaction to drain.

        Memtable contents are *not* force-flushed: every unflushed document
        is already durable in its WAL segment and will be replayed on the
        next open, which keeps close() fast and crash-equivalent.
        """
        self._stop.set()
        worker, self._worker = self._worker, None
        if worker is not None and worker.is_alive():
            worker.join(timeout=30.0)
        # Serialize with any maintenance that was mid-flight when the stop
        # flag was set (manual flush/compact callers hold the same locks).
        for live in self.lives():
            with live._maintenance_lock:
                pass
