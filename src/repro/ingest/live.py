"""The live write path: one index's ingester, the combined view, the worker.

Lifecycle of an appended document (read-your-writes at every step):

1. ``append`` — the batch becomes a durable WAL segment, then lands in the
   *active* memtable.  Queries see it immediately through the combined view.
2. ``flush`` — the active memtable is atomically *sealed* (a fresh active
   one takes over for concurrent appends), its documents are built into an
   Airphant delta index with ``AppendOnlyIndexManager.append``, the catalog
   is invalidated so the next open includes the delta, and only then are the
   sealed memtable dropped and its WAL segments retired.  At no instant is a
   document invisible; at worst it is briefly visible twice, which the
   combined view's de-duplication by ``(blob, offset, length)`` absorbs.
3. ``compact`` — deltas fold into a fresh generational base via the
   manager's atomic manifest swap (see :mod:`repro.index.updates`).

:class:`LiveSearcher` is the combined memtable ∪ deltas ∪ base view: a
:class:`~repro.search.multi.MultiIndexSearcher` whose member list is computed
*per call*, so catalog invalidations (new delta, new generation) and memtable
swaps are picked up without any notification plumbing.

:class:`IngestCoordinator` owns every live index of a service plus one
background worker thread that applies the flush/compaction policies from
:class:`~repro.service.config.ServiceConfig`; ``close()`` stops the worker
and waits for an in-flight flush or compaction to drain.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.index.updates import AppendOnlyIndexManager
from repro.ingest.memtable import Memtable, MemtableSearcher
from repro.ingest.wal import WriteAheadLog, ingest_manifest_blob
from repro.observability import MetricsRegistry
from repro.observability.tracing import span
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.multi import MultiIndexSearcher
from repro.storage.base import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.config import ServiceConfig

#: Histogram buckets for flush/compaction durations (seconds): builds run
#: longer than the default request-latency ladder.
_MAINTENANCE_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class IngestOverloadedError(RuntimeError):
    """The memtable has outrun the flusher (typed, maps to HTTP 429).

    Raised by the write path when the configured memtable occupancy limits
    (``ingest_max_memtable_docs`` / ``ingest_max_memtable_bytes``) are still
    exceeded after the bounded wait (``ingest_overload_wait_s``).  The write
    was **not** accepted — nothing was made durable — so the caller can
    safely retry once the flusher catches up.
    """

    def __init__(self, index_name: str, documents: int, nbytes: int) -> None:
        super().__init__(
            f"index {index_name!r} is overloaded: {documents} unflushed documents "
            f"({nbytes} bytes) exceed the configured memtable limits; retry after "
            "the flusher catches up"
        )
        self.index_name = index_name
        self.documents = documents
        self.nbytes = nbytes


class LiveIndex:
    """The write path of one index: WAL, memtables, flush, compaction."""

    def __init__(
        self,
        store: ObjectStore,
        index_name: str,
        config: "ServiceConfig",
        metrics: MetricsRegistry,
        invalidate: Callable[[str], None],
    ) -> None:
        self._store = store
        self._index_name = index_name
        self._config = config
        self._invalidate = invalidate
        tokenizer = config.make_tokenizer()
        self._tokenizer_factory = config.make_tokenizer
        self._wal = WriteAheadLog(store, index_name)
        self._manager = AppendOnlyIndexManager(
            store, base_index=index_name, tokenizer=tokenizer
        )
        self._active = Memtable(tokenizer)
        self._sealed: list[Memtable] = []
        # _write_lock guards WAL commits and memtable swaps (short holds);
        # _maintenance_lock serializes flushes/compactions (long holds) so a
        # manual POST /flush and the background worker never interleave.
        self._write_lock = threading.RLock()
        self._maintenance_lock = threading.RLock()
        self._delta_count = len(self._manager.manifest().delta_indexes)
        self._ratio_dirty = self._delta_count > 0
        # Pending deletes, keyed by tombstone record blob; the flattened
        # frozenset is what query-time filtering and flush-survivor selection
        # read (swapped atomically under the write lock on every mutation).
        self._tombstones: dict[str, tuple[Posting, ...]] = dict(
            self._wal.load_tombstones()
        )
        self._tombstone_set: frozenset[Posting] = frozenset(
            ref for refs in self._tombstones.values() for ref in refs
        )

        self._documents_metric = metrics.counter(
            "airphant_ingest_documents_total",
            "Documents accepted by the live write path",
            label_names=("index",),
        )
        self._batches_metric = metrics.counter(
            "airphant_ingest_batches_total",
            "Append batches accepted by the live write path",
            label_names=("index",),
        )
        self._wal_segments_metric = metrics.counter(
            "airphant_wal_segments_total",
            "WAL segments written",
            label_names=("index",),
        )
        self._wal_bytes_metric = metrics.counter(
            "airphant_wal_bytes_total",
            "Bytes written to WAL segments",
            label_names=("index",),
        )
        self._replayed_metric = metrics.counter(
            "airphant_wal_replayed_documents_total",
            "Documents recovered from WAL segments at open",
            label_names=("index",),
        )
        self._flushes_metric = metrics.counter(
            "airphant_ingest_flushes_total",
            "Memtable flushes completed (one delta index each)",
            label_names=("index",),
        )
        self._compactions_metric = metrics.counter(
            "airphant_ingest_compactions_total",
            "Compactions completed (deltas folded into a new base generation)",
            label_names=("index",),
        )
        self._flush_seconds_metric = metrics.histogram(
            "airphant_ingest_flush_seconds",
            "Wall-clock duration of memtable flushes",
            buckets=_MAINTENANCE_BUCKETS,
        )
        self._compact_seconds_metric = metrics.histogram(
            "airphant_ingest_compact_seconds",
            "Wall-clock duration of compactions",
            buckets=_MAINTENANCE_BUCKETS,
        )
        self._memtable_docs_gauge = metrics.gauge(
            "airphant_memtable_documents",
            "Unflushed documents currently searchable from memtables",
            label_names=("index",),
        )
        self._memtable_bytes_gauge = metrics.gauge(
            "airphant_memtable_bytes",
            "Raw bytes of unflushed documents held by memtables",
            label_names=("index",),
        )
        self._deletes_metric = metrics.counter(
            "airphant_ingest_deletes_total",
            "Document references tombstoned by DELETE operations",
            label_names=("index",),
        )
        self._updates_metric = metrics.counter(
            "airphant_ingest_updates_total",
            "UPDATE operations accepted (new segment + old-ref tombstone)",
            label_names=("index",),
        )
        self._overloads_metric = metrics.counter(
            "airphant_ingest_overloads_total",
            "Writes rejected with ingest_overloaded (memtable over its limits)",
            label_names=("index",),
        )
        self._tombstones_gauge = metrics.gauge(
            "airphant_tombstones_pending",
            "Condemned document references awaiting physical purge at compaction",
            label_names=("index",),
        )

    # -- inspection ---------------------------------------------------------------

    @property
    def index_name(self) -> str:
        """The logical index this ingester writes into."""
        return self._index_name

    @property
    def wal(self) -> WriteAheadLog:
        """The segmented write-ahead log."""
        return self._wal

    @property
    def manager(self) -> AppendOnlyIndexManager:
        """The append-only manager deltas and compactions go through."""
        return self._manager

    @property
    def delta_count(self) -> int:
        """Delta indexes currently stacked on the base (compaction input)."""
        return self._delta_count

    def memtable_documents(self) -> int:
        """Searchable-but-unflushed documents (active + sealed memtables)."""
        with self._write_lock:
            return sum(len(table) for table in (*self._sealed, self._active))

    def memtable_bytes(self) -> int:
        """Raw bytes of searchable-but-unflushed documents."""
        with self._write_lock:
            return sum(
                table.approximate_bytes for table in (*self._sealed, self._active)
            )

    def memtable_searchers(self) -> list[MemtableSearcher]:
        """One searcher per live memtable (sealed first, active last)."""
        with self._write_lock:
            tables = [*self._sealed, self._active]
        return [
            MemtableSearcher(table, f"{self._index_name}/memtable")
            for table in tables
            if len(table) > 0
        ]

    def tombstone_refs(self) -> frozenset[Posting]:
        """Pending deletes: refs condemned but not yet physically purged.

        Query tiers that may still surface a condemned document (deltas,
        base, cluster-routed shards) filter against this set; the memtable
        tier never needs it (deletes are applied there physically).
        """
        with self._write_lock:
            return self._tombstone_set

    def summary(self) -> dict[str, Any]:
        """Compact state block for ``/healthz``."""
        return {
            "memtable_documents": self.memtable_documents(),
            "memtable_bytes": self.memtable_bytes(),
            "wal_segments_active": len(self._wal.manifest().active_segments),
            "delta_indexes": self._delta_count,
            "tombstones_pending": len(self.tombstone_refs()),
        }

    def _update_gauges(self) -> None:
        self._memtable_docs_gauge.set(self.memtable_documents(), index=self._index_name)
        self._memtable_bytes_gauge.set(self.memtable_bytes(), index=self._index_name)
        self._tombstones_gauge.set(len(self.tombstone_refs()), index=self._index_name)

    def clear_gauges(self) -> None:
        """Drop this index's occupancy series (the index is being discarded)."""
        self._memtable_docs_gauge.remove(index=self._index_name)
        self._memtable_bytes_gauge.remove(index=self._index_name)
        self._tombstones_gauge.remove(index=self._index_name)

    def _record_tombstones(self, blob: str, refs: Sequence[Posting]) -> None:
        """Track one committed tombstone record (caller holds the write lock)."""
        self._tombstones[blob] = tuple(refs)
        self._tombstone_set = self._tombstone_set | frozenset(refs)

    # -- recovery -----------------------------------------------------------------

    def replay(self) -> int:
        """Rebuild the memtable from unflushed WAL segments (crash recovery).

        Replayed documents are filtered against the pending tombstone set, so
        a document appended *and* deleted before the crash stays deleted — a
        replay must never resurrect an acknowledged delete.
        """
        documents = self._wal.replay()
        if not documents:
            return 0
        with self._write_lock:
            tombstones = self._tombstone_set
            added = self._active.add(
                document for document in documents if document.ref not in tombstones
            )
        self._replayed_metric.inc(added, index=self._index_name)
        self._update_gauges()
        return added

    # -- the write path -----------------------------------------------------------

    def _wait_for_capacity(self) -> None:
        """Block (briefly) until the memtable is under its occupancy limits.

        The backpressure valve: when the memtable outruns the flusher, wait
        up to ``ingest_overload_wait_s`` for a flush to drain it, then raise
        the typed :class:`IngestOverloadedError` (HTTP 429) instead of
        growing without bound.  Both limits disabled (0) is the default.
        """
        max_docs = self._config.ingest_max_memtable_docs
        max_bytes = self._config.ingest_max_memtable_bytes
        if max_docs <= 0 and max_bytes <= 0:
            return
        deadline = time.monotonic() + max(self._config.ingest_overload_wait_s, 0.0)
        while True:
            documents = self.memtable_documents()
            nbytes = self.memtable_bytes()
            over = (max_docs > 0 and documents >= max_docs) or (
                max_bytes > 0 and nbytes >= max_bytes
            )
            if not over:
                return
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._overloads_metric.inc(index=self._index_name)
                raise IngestOverloadedError(self._index_name, documents, nbytes)
            time.sleep(min(0.01, remaining))

    def append(self, texts: Sequence[str]) -> dict[str, Any]:
        """Durably accept one batch of documents; searchable on return.

        Raises ``ValueError`` for documents the WAL segment format cannot
        hold (empty, or containing newlines) and
        :class:`IngestOverloadedError` when the memtable is over its
        configured limits (nothing durable happens in that case).
        """
        from repro.ingest.wal import encode_segment, parse_segment

        texts = list(texts)
        data = encode_segment(texts)  # validation before any I/O or locking
        self._wait_for_capacity()
        with self._write_lock:
            sequence, blob = self._wal.reserve_segment()
        # The heavyweight network write happens OUTSIDE the write lock, so
        # concurrent queries (which briefly take the lock to snapshot the
        # memtables) never stall behind a slow or retried segment upload.
        self._store.put(blob, data)
        documents = parse_segment(blob, data)
        with self._write_lock:
            self._wal.commit_segment(sequence, blob)
            self._active.add(documents)
        nbytes = sum(document.length for document in documents)
        self._documents_metric.inc(len(documents), index=self._index_name)
        self._batches_metric.inc(index=self._index_name)
        self._wal_segments_metric.inc(index=self._index_name)
        self._wal_bytes_metric.inc(nbytes, index=self._index_name)
        self._update_gauges()
        return {
            "index": self._index_name,
            "appended": len(documents),
            "wal_segment": blob,
            "memtable_documents": self.memtable_documents(),
            "refs": [
                {"blob": doc.blob, "offset": doc.offset, "length": doc.length}
                for doc in documents
            ],
        }

    def delete(self, refs: Sequence[Posting]) -> dict[str, Any]:
        """Durably delete documents by reference; invisible on return.

        The commit point is the manifest PUT referencing the tombstone
        record: before it, a crash strands at most an unreferenced record
        blob; after it, every tier filters the refs until a compaction
        physically drops them.  Unknown refs are accepted (deletes are
        idempotent), and the memtable tier applies the delete physically on
        the spot.
        """
        from repro.ingest.wal import encode_tombstones

        refs = list(dict.fromkeys(refs))
        data = encode_tombstones(refs)  # validation before any I/O or locking
        with self._write_lock:
            sequence, blob = self._wal.reserve_tombstone()
        # Like segment uploads, the record PUT happens outside the write lock.
        self._store.put(blob, data)
        with self._write_lock:
            self._wal.commit_tombstone(sequence, blob)
            self._record_tombstones(blob, refs)
            removed = self._active.remove(refs)
            for table in self._sealed:
                removed += table.remove(refs)
        self._deletes_metric.inc(len(refs), index=self._index_name)
        self._update_gauges()
        return {
            "index": self._index_name,
            "deleted": len(refs),
            "memtable_removed": removed,
            "tombstone_record": blob,
            "tombstones_pending": len(self.tombstone_refs()),
        }

    def update(self, ref: Posting, text: str) -> dict[str, Any]:
        """Durably replace one document; read-your-writes on return.

        One new WAL segment (the replacement text) plus one tombstone record
        (the old reference), committed with a **single** manifest PUT: a
        crash before it leaves the old document untouched, after it the
        replacement — no window shows both or neither.  Raises
        ``ValueError`` for text the segment format cannot hold and
        :class:`IngestOverloadedError` under backpressure.
        """
        from repro.ingest.wal import encode_segment, encode_tombstones, parse_segment

        segment_data = encode_segment([text])  # validation before any I/O
        tombstone_data = encode_tombstones([ref])
        self._wait_for_capacity()
        with self._write_lock:
            segment_sequence, segment = self._wal.reserve_segment()
            tombstone_sequence, tombstone = self._wal.reserve_tombstone()
        self._store.put(segment, segment_data)
        self._store.put(tombstone, tombstone_data)
        documents = parse_segment(segment, segment_data)
        with self._write_lock:
            self._wal.commit_update(
                segment_sequence, segment, tombstone_sequence, tombstone
            )
            self._record_tombstones(tombstone, [ref])
            self._active.remove([ref])
            for table in self._sealed:
                table.remove([ref])
            self._active.add(documents)
        self._updates_metric.inc(index=self._index_name)
        self._documents_metric.inc(len(documents), index=self._index_name)
        self._wal_segments_metric.inc(index=self._index_name)
        self._wal_bytes_metric.inc(len(segment_data), index=self._index_name)
        self._update_gauges()
        new_ref = documents[0].ref
        return {
            "index": self._index_name,
            "updated": {"blob": ref.blob, "offset": ref.offset, "length": ref.length},
            "ref": {
                "blob": new_ref.blob,
                "offset": new_ref.offset,
                "length": new_ref.length,
            },
            "wal_segment": segment,
            "tombstone_record": tombstone,
        }

    def should_flush(self) -> bool:
        """Whether the flush policy (doc count / byte budget) has triggered."""
        with self._write_lock:
            return (
                len(self._active) >= self._config.ingest_flush_docs
                or self._active.approximate_bytes >= self._config.ingest_flush_bytes
            )

    def flush(self) -> dict[str, Any] | None:
        """Fold the active memtable into a fresh delta index.

        Returns ``None`` when there was nothing to flush.  Concurrency: the
        sealed memtable stays searchable while the delta builds, and the
        catalog is invalidated *before* it is dropped, so readers never lose
        sight of a document (they may briefly see it from both places; the
        combined view de-duplicates).

        Deletes interact here in two ways: documents tombstoned before the
        seal are filtered out of the delta build (they must not reappear in
        the persisted tier), and a memtable fully emptied by deletes still
        retires its WAL segments — the tombstone records, not the segments,
        carry the deletes forward.
        """
        started = time.perf_counter()
        with self._maintenance_lock:
            with self._write_lock:
                segments = self._wal.manifest().active_segments
                if len(self._active) == 0 and not segments:
                    return None
                sealed = self._active
                self._active = Memtable(self._tokenizer_factory())
                self._sealed.append(sealed)
                # Snapshot once: the build input, the undo payload, and the
                # survivor filter all read this same list (the old code
                # re-queried the sealed memtable in the undo path, racing
                # with concurrent deletes against it).
                documents = sealed.documents()
                tombstones = self._tombstone_set
            survivors = [
                document for document in documents if document.ref not in tombstones
            ]
            built = None
            if survivors:
                try:
                    built = self._manager.append(survivors, corpus_name="ingest")
                except BaseException:
                    # Undo the seal: the documents return to the (new) active
                    # memtable — still searchable, still WAL-covered — so the
                    # next flush retries them.
                    with self._write_lock:
                        self._sealed.remove(sealed)
                        self._active.add(documents)
                    raise
                self._delta_count += 1
                self._ratio_dirty = True
                # New delta first, then drop the sealed memtable: queries in
                # the gap see the documents twice (de-duplicated), never zero
                # times.
                self._invalidate(self._index_name)
            with self._write_lock:
                self._sealed.remove(sealed)
                self._wal.retire(segments)
        elapsed = time.perf_counter() - started
        self._flushes_metric.inc(index=self._index_name)
        self._flush_seconds_metric.observe(elapsed)
        self._update_gauges()
        return {
            "index": self._index_name,
            "flushed": len(survivors),
            "delta": built.index_name if built is not None else None,
            "seconds": elapsed,
        }

    def should_compact(self) -> bool:
        """Whether the compaction policy has triggered.

        Two triggers, both disabled at 0: a maximum stacked-delta count, and
        a delta-bytes / base-bytes ratio.  The ratio needs storage listings,
        so it is only recomputed after a flush changed the delta stack.
        """
        if self._delta_count == 0:
            return False
        max_deltas = self._config.ingest_compact_deltas
        if max_deltas > 0 and self._delta_count >= max_deltas:
            return True
        ratio = self._config.ingest_compact_ratio
        if ratio > 0 and self._ratio_dirty:
            manifest = self._manager.manifest()
            base_bytes = self._base_bytes(manifest.active_base)
            delta_bytes = sum(
                self._store.total_bytes(prefix=f"{delta}/")
                for delta in manifest.delta_indexes
            )
            self._ratio_dirty = False
            if base_bytes > 0 and delta_bytes / base_bytes >= ratio:
                return True
        return False

    def _base_bytes(self, active_base: str) -> int:
        """Bytes of the base build's own blobs (the ratio denominator).

        A generational base owns its whole ``gen-NNNNNNNN/`` prefix, but the
        legacy in-place base shares its prefix with deltas, WAL segments,
        and manifests — summing the shared prefix would fold the deltas into
        the denominator and structurally understate the ratio (a configured
        ratio >= 1.0 could then never fire).
        """
        if active_base != self._index_name:
            return self._store.total_bytes(prefix=f"{active_base}/")
        from repro.index.compaction import HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX
        from repro.index.sharding import SHARD_MARKER

        nbytes = self._store.total_bytes(prefix=f"{active_base}{SHARD_MARKER}")
        for suffix in (HEADER_BLOB_SUFFIX, SUPERPOST_BLOB_SUFFIX):
            blob = f"{active_base}/{suffix}"
            if self._store.exists(blob):
                nbytes += self._store.size(blob)
        return nbytes

    def compact(self) -> dict[str, Any] | None:
        """Flush, then fold every delta into a new base generation.

        Returns ``None`` when there is nothing to fold (no memtable
        documents, no deltas, and no pending deletes).

        This is where deletes become physical: the rebuild excludes every
        tombstoned reference, so the new generation — including its ranking
        stats — contains only surviving documents, and the applied tombstone
        records are retired from the WAL afterwards.  Tombstones committed
        *during* the rebuild are not retired; they keep filtering until the
        next compaction.
        """
        started = time.perf_counter()
        with self._maintenance_lock:
            self.flush()
            manifest = self._manager.manifest()
            with self._write_lock:
                tombstone_records = tuple(self._tombstones.keys())
                tombstone_refs = self._tombstone_set
            if not manifest.delta_indexes and not tombstone_refs:
                return None
            folded = len(manifest.delta_indexes)
            built = self._manager.compact(
                corpus_name="compacted", exclude=tombstone_refs
            )
            self._delta_count = 0
            self._ratio_dirty = False
            self._invalidate(self._index_name)
            with self._write_lock:
                self._wal.retire_tombstones(tombstone_records)
                for record in tombstone_records:
                    self._tombstones.pop(record, None)
                self._tombstone_set = frozenset(
                    ref for refs in self._tombstones.values() for ref in refs
                )
        elapsed = time.perf_counter() - started
        self._compactions_metric.inc(index=self._index_name)
        self._compact_seconds_metric.observe(elapsed)
        self._update_gauges()
        manager_manifest = self._manager.manifest()
        return {
            "index": self._index_name,
            "deltas_folded": folded,
            "generation": manager_manifest.generation,
            "base": built.index_name,
            "tombstones_purged": len(tombstone_refs),
            "seconds": elapsed,
        }


class LiveSearcher(MultiIndexSearcher):
    """Combined memtable ∪ deltas ∪ base view over one index.

    A :class:`~repro.search.multi.MultiIndexSearcher` whose members are
    resolved *per call* from a provider: the catalog's (cached) searcher for
    the persisted members plus one exact searcher per live memtable.  Every
    inherited query path — keyword, Boolean (hence regex filtering), and
    ``lookup_postings`` — therefore sees freshly appended documents with no
    further wiring, and picks up flush/compaction invalidations on its next
    call.  ``close`` is a no-op: the catalog owns the persisted members'
    lifecycles, the memtables own nothing closable.
    """

    def __init__(
        self, members: Callable[[], list[Any]], tokenizer: Tokenizer | None = None
    ) -> None:
        # Deliberately no super().__init__: members are computed per call.
        self._provider = members
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self.init_latency_ms = 0.0

    @property
    def _searchers(self) -> list[Any]:  # type: ignore[override]
        with span("live.members") as members_span:
            members = self._provider()
            members_span.set(members=len(members))
        return members

    def initialize(self) -> float:
        """Members are initialized by their owners; nothing to do."""
        return 0.0

    def close(self) -> None:
        """No-op: the catalog and the live index own the member lifecycles."""


class IngestCoordinator:
    """Registry of live indexes plus the background flush/compaction worker.

    Created by :class:`~repro.service.facade.AirphantService`; one worker
    thread per service, started lazily with the first live index.  A live
    index exists for ``name`` once documents were appended this process, or
    once a query found unflushed WAL segments from a previous process (the
    crash-recovery replay).
    """

    def __init__(
        self,
        store: ObjectStore,
        config: "ServiceConfig",
        metrics: MetricsRegistry,
        invalidate: Callable[[str], None],
    ) -> None:
        self._store = store
        self._config = config
        self._metrics = metrics
        self._invalidate = invalidate
        self._lives: dict[str, LiveIndex] = {}
        #: Names already probed for leftover WAL state (one probe per name).
        self._probed: set[str] = set()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None
        self._errors_metric = metrics.counter(
            "airphant_ingest_errors_total",
            "Background ingest-maintenance failures, by stage",
            label_names=("stage",),
        )

    # -- registry -----------------------------------------------------------------

    def live(self, name: str, create: bool = False) -> LiveIndex | None:
        """The live index for ``name``, or ``None`` if it has no write state.

        With ``create=True`` (the append path) a missing live index is
        created.  Either way, the first touch of a name probes the store
        once for unflushed WAL segments and replays them — this is the
        crash-recovery path, and it also serves reopened processes.
        """
        with self._lock:
            existing = self._lives.get(name)
            if existing is not None:
                return existing
            needs_replay = False
            if name not in self._probed:
                # Mark probed only after the probe (and replay below)
                # succeed: a transient store failure here must leave the
                # leftover-WAL check pending, not silently skipped forever.
                needs_replay = self._store.exists(ingest_manifest_blob(name))
            if not create and not needs_replay:
                self._probed.add(name)
                return None
            live = LiveIndex(
                self._store, name, self._config, self._metrics, self._invalidate
            )
            if needs_replay:
                live.replay()
            self._probed.add(name)
            if (
                not create
                and live.memtable_documents() == 0
                and not live.tombstone_refs()
            ):
                # The WAL manifest exists but everything was flushed and no
                # deletes are pending: no write state to serve; queries stay
                # on the persisted view.
                return None
            self._lives[name] = live
            self._ensure_worker()
            return live

    def members(self, name: str) -> list[MemtableSearcher]:
        """Memtable searchers to splice into ``name``'s combined view."""
        live = self.live(name)
        return live.memtable_searchers() if live is not None else []

    def tombstone_refs(self, name: str) -> frozenset[Posting]:
        """Pending deletes of ``name`` (empty when it has no live state)."""
        live = self.live(name)
        return live.tombstone_refs() if live is not None else frozenset()

    def discard(self, name: str, destroy_wal: bool = False) -> None:
        """Forget ``name``'s live state (full rebuild path).

        ``destroy_wal=True`` also deletes its WAL segments — only valid when
        the whole index is rebuilt from scratch, making the old documents
        (and hence the segment blobs holding their bytes) garbage.
        """
        with self._lock:
            live = self._lives.pop(name, None)
            if live is not None:
                # A rebuilt index must not keep reporting phantom memtable
                # occupancy from its discarded predecessor.
                live.clear_gauges()
            self._probed.discard(name)
            if destroy_wal:
                WriteAheadLog(self._store, name).destroy()

    def lives(self) -> list[LiveIndex]:
        """Every currently tracked live index."""
        with self._lock:
            return list(self._lives.values())

    def summary(self) -> dict[str, Any]:
        """Aggregate ingest block for ``/healthz``."""
        lives = self.lives()
        return {
            "live_indexes": len(lives),
            "memtable_documents": sum(live.memtable_documents() for live in lives),
            "wal_segments_active": sum(
                len(live.wal.manifest().active_segments) for live in lives
            ),
            "delta_indexes": sum(live.delta_count for live in lives),
            "tombstones_pending": sum(len(live.tombstone_refs()) for live in lives),
            "worker_running": self._worker is not None and self._worker.is_alive(),
        }

    # -- the background worker ----------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._config.ingest_interval_s <= 0:
            return  # background maintenance disabled; manual flush/compact only
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop = threading.Event()
        self._worker = threading.Thread(
            target=self._run, name="airphant-ingest", daemon=True
        )
        self._worker.start()

    def _run(self) -> None:
        stop = self._stop
        while not stop.wait(self._config.ingest_interval_s):
            self.run_maintenance()

    def run_maintenance(self) -> dict[str, int]:
        """One policy pass over every live index (the worker's loop body).

        Public so tests (and ``ingest_interval_s=0`` deployments) can drive
        maintenance deterministically without a thread.
        """
        flushed = compacted = errors = 0
        for live in self.lives():
            try:
                if live.should_flush() and live.flush() is not None:
                    flushed += 1
                if live.should_compact() and live.compact() is not None:
                    compacted += 1
            except Exception:
                # The worker must survive transient storage failures: count
                # them and retry on the next tick (appends stay durable in
                # the WAL regardless).
                errors += 1
                self._errors_metric.inc(stage="maintenance")
        return {"flushed": flushed, "compacted": compacted, "errors": errors}

    def close(self) -> None:
        """Stop the worker and wait for an in-flight flush/compaction to drain.

        Memtable contents are *not* force-flushed: every unflushed document
        is already durable in its WAL segment and will be replayed on the
        next open, which keeps close() fast and crash-equivalent.
        """
        self._stop.set()
        worker, self._worker = self._worker, None
        if worker is not None and worker.is_alive():
            worker.join(timeout=30.0)
        # Serialize with any maintenance that was mid-flight when the stop
        # flag was set (manual flush/compact callers hold the same locks).
        for live in self.lives():
            with live._maintenance_lock:
                pass
