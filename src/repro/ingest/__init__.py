"""Live ingestion: WAL-backed memtables, delta flushes, background compaction.

The paper names "frequent corpus updates" as Airphant's open future work; the
offline half already exists (:mod:`repro.index.updates` builds append-only
delta indexes and compacts them).  This package adds the *online* half — a
write path a serving node can expose:

* :class:`~repro.ingest.memtable.Memtable` — an exact in-memory inverted
  map over freshly appended documents, searchable the moment ``append``
  returns (no sketch: a memtable is small, so exact postings are cheap);
* :mod:`repro.ingest.wal` — every appended batch is persisted first as a
  write-ahead-log *segment* blob (plain line-delimited corpus bytes, so the
  segment doubles as the documents' permanent storage) plus an atomically
  swapped ingest manifest; reopening a store replays unflushed segments;
* :class:`~repro.ingest.live.LiveIndex` — one index's write path: append →
  WAL → memtable, flush → delta index (via ``AppendOnlyIndexManager``),
  compact → generational base swap;
* :class:`~repro.ingest.live.LiveSearcher` — the combined
  memtable ∪ deltas ∪ base view every query mode routes through;
* :class:`~repro.ingest.live.IngestCoordinator` — the service's registry of
  live indexes plus the background worker that applies the flush/compaction
  policies.
"""

from repro.ingest.live import (
    IngestCoordinator,
    IngestOverloadedError,
    LiveIndex,
    LiveSearcher,
)
from repro.ingest.memtable import Memtable, MemtableSearcher
from repro.ingest.wal import IngestManifest, WriteAheadLog

__all__ = [
    "IngestCoordinator",
    "IngestManifest",
    "IngestOverloadedError",
    "LiveIndex",
    "LiveSearcher",
    "Memtable",
    "MemtableSearcher",
    "WriteAheadLog",
]
