"""In-memory, immediately-searchable store of freshly ingested documents.

A memtable is the read-your-writes half of the ingestion path: documents land
in it the moment their WAL segment is durable, and every query mode sees them
*before* any delta index is built.  Unlike the persisted indexes it mirrors,
a memtable keeps an **exact** inverted map — it is bounded by the flush
policy to at most a few thousand documents, so exact per-word postings cost
almost nothing and introduce zero false positives.

:class:`MemtableSearcher` adapts a memtable to the searcher interface
:class:`~repro.search.multi.MultiIndexSearcher` expects of its members
(``search`` / ``search_boolean`` / ``lookup_postings`` with the same merging
semantics), so the combined live view is just "one more member index" — no
special cases anywhere in the query path.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.core.superpost import Superpost
from repro.index.stats import IndexStats, build_stats
from repro.parsing.documents import Document, Posting
from repro.parsing.tokenizer import Tokenizer, WhitespaceAnalyzer
from repro.search.boolean import BooleanQuery, Term, parse_boolean_query
from repro.search.ranking import BM25Params, execute_topk
from repro.search.results import LatencyBreakdown, SearchResult


class Memtable:
    """Exact inverted map over not-yet-flushed documents (thread-safe)."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer if tokenizer is not None else WhitespaceAnalyzer()
        self._lock = threading.Lock()
        self._postings: dict[str, set[Posting]] = {}
        self._documents: dict[Posting, Document] = {}
        self._bytes = 0

    @property
    def tokenizer(self) -> Tokenizer:
        """The analyzer documents are tokenized with (must match the index)."""
        return self._tokenizer

    @property
    def num_documents(self) -> int:
        """Documents currently held."""
        with self._lock:
            return len(self._documents)

    @property
    def approximate_bytes(self) -> int:
        """Raw UTF-8 bytes of the held documents (the flush-policy input)."""
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        return self.num_documents

    def add(self, documents: Iterable[Document]) -> int:
        """Insert parsed documents; returns how many were new."""
        added = 0
        with self._lock:
            for document in documents:
                if document.ref in self._documents:
                    continue
                self._documents[document.ref] = document
                self._bytes += document.length
                for word in self._tokenizer.distinct_terms(document.text):
                    self._postings.setdefault(word, set()).add(document.ref)
                added += 1
        return added

    def remove(self, refs: Iterable[Posting]) -> int:
        """Drop documents by reference (the delete path); returns how many held.

        The memtable tier applies deletes *physically* — the document and its
        postings vanish at once — so unflushed documents never need tombstone
        filtering at query time.  References not held are ignored (deletes
        are idempotent and may target already-flushed documents).
        """
        removed = 0
        with self._lock:
            for ref in refs:
                document = self._documents.pop(ref, None)
                if document is None:
                    continue
                self._bytes -= document.length
                for word in self._tokenizer.distinct_terms(document.text):
                    postings = self._postings.get(word)
                    if postings is not None:
                        postings.discard(ref)
                        if not postings:
                            del self._postings[word]
                removed += 1
        return removed

    def documents(self) -> list[Document]:
        """Every held document, in insertion order."""
        with self._lock:
            return list(self._documents.values())

    def postings(self, word: str) -> set[Posting]:
        """Exact postings of ``word`` (empty set when absent)."""
        with self._lock:
            return set(self._postings.get(word, ()))

    def document(self, posting: Posting) -> Document | None:
        """The document at ``posting``, if held."""
        with self._lock:
            return self._documents.get(posting)


class MemtableSearcher:
    """Searcher-interface adapter over a :class:`Memtable`.

    Implements exactly the member contract of
    :class:`~repro.search.multi.MultiIndexSearcher`: the same query entry
    points returning :class:`~repro.search.results.SearchResult` /
    ``(postings, LatencyBreakdown)``.  All latencies are zero — memtable
    reads touch no storage — so merged accounting (max of lookups, sum of
    bytes) is unaffected by this member.
    """

    def __init__(self, memtable: Memtable, index_name: str = "memtable") -> None:
        self._memtable = memtable
        self._index_name = index_name
        self.init_latency_ms = 0.0

    @property
    def memtable(self) -> Memtable:
        """The underlying memtable."""
        return self._memtable

    def initialize(self) -> float:
        """Nothing to download; present for interface parity."""
        return 0.0

    def close(self) -> None:
        """Nothing to release; present for interface parity."""

    # -- query entry points --------------------------------------------------------

    def search(self, query: str, top_k: int | None = None) -> SearchResult:
        """AND-of-keywords search (the keyword mode contract)."""
        words = list(dict.fromkeys(self._memtable.tokenizer.tokenize(query)))
        if not words:
            return SearchResult(query=query)
        predicate = parse_boolean_query(" AND ".join(words))
        return self._execute(predicate, query, top_k)

    def search_boolean(
        self, query: BooleanQuery | str, top_k: int | None = None
    ) -> SearchResult:
        """Boolean (AND/OR tree) search."""
        tree = parse_boolean_query(query) if isinstance(query, str) else query
        label = query if isinstance(query, str) else " ".join(sorted(tree.terms()))
        return self._execute(tree, label, top_k)

    def lookup_postings(self, word: str) -> tuple[list[Posting], LatencyBreakdown]:
        """Exact term lookup (no storage round trips, hence zero latency)."""
        return sorted(self._memtable.postings(word)), LatencyBreakdown()

    # -- ranked retrieval (mode="topk_bm25") ---------------------------------------

    def ranking_stats(self) -> IndexStats:
        """Exact ranking statistics over the held documents.

        Computed on demand from the in-memory text with the same analyzer as
        the persisted stats blobs, so an unflushed document scores exactly as
        it will after the flush persists it.
        """
        return build_stats(self._memtable.documents(), self._memtable.tokenizer)

    def ranked_candidates(
        self, words: Sequence[str], latency: LatencyBreakdown
    ) -> Superpost:
        """Conjunctive candidates for a ranked query (exact, zero latency)."""
        return Superpost.intersect_all(
            Superpost(self._memtable.postings(word)) for word in words
        )

    def fetch_documents(
        self, postings: Sequence[Posting], latency: LatencyBreakdown
    ) -> list[Document]:
        """Resolve postings straight from memory (member protocol)."""
        documents: list[Document] = []
        for posting in postings:
            document = self._memtable.document(posting)
            if document is not None:
                documents.append(document)
        return documents

    def search_topk(
        self,
        query: str,
        k: int,
        weights: dict[str, float] | None = None,
        params: BM25Params | None = None,
    ) -> SearchResult:
        """BM25 top-k over the memtable alone (read-your-writes for ranks)."""
        words = list(dict.fromkeys(self._memtable.tokenizer.tokenize(query)))
        return execute_topk([self], words, query, k, params=params, weights=weights)

    # -- execution -----------------------------------------------------------------

    def _execute(
        self, tree: BooleanQuery, label: str, top_k: int | None
    ) -> SearchResult:
        candidates = tree.candidates(lambda word: Superpost(self._memtable.postings(word)))
        postings = candidates.sorted_postings()
        documents: list[Document] = []
        for posting in postings:
            document = self._memtable.document(posting)
            # The exact map admits no false positives; the predicate check
            # mirrors the persisted searchers' final filter all the same
            # (e.g. a document evicted between candidates() and here).
            if document is not None and tree.matches(
                self._memtable.tokenizer.distinct_terms(document.text)
            ):
                documents.append(document)
        if top_k is not None:
            documents = documents[:top_k]
        return SearchResult(
            query=label,
            documents=documents,
            candidate_postings=postings,
            false_positive_count=0,
            latency=LatencyBreakdown(),
        )


def single_term(word: str) -> BooleanQuery:
    """A one-word query tree (convenience for tests and tools)."""
    return Term(word)


def memtable_from_documents(
    documents: Sequence[Document], tokenizer: Tokenizer | None = None
) -> Memtable:
    """Build a memtable pre-loaded with ``documents`` (replay helper)."""
    memtable = Memtable(tokenizer)
    memtable.add(documents)
    return memtable
